//===- tests/ObsTest.cpp - tracing & metrics layer tests -----------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// src/obs: span nesting and depth, histogram bucketing, the disabled
/// fast path, thread-safety smoke tests, and a Chrome-trace JSON round-trip
/// through a minimal JSON validity checker.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Request.h"
#include "obs/Trace.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

using namespace vega;
using namespace vega::obs;

namespace {

/// Minimal recursive-descent JSON validity checker (objects, arrays,
/// strings, numbers, literals). Returns true iff \p Text is one valid JSON
/// value with nothing trailing.
class JsonChecker {
public:
  explicit JsonChecker(const std::string &Text) : S(Text) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return I == S.size();
  }

private:
  const std::string &S;
  size_t I = 0;

  void skipWs() {
    while (I < S.size() && std::isspace(static_cast<unsigned char>(S[I])))
      ++I;
  }
  bool consume(char C) {
    if (I < S.size() && S[I] == C) {
      ++I;
      return true;
    }
    return false;
  }
  bool literal(const char *Lit) {
    size_t N = std::strlen(Lit);
    if (S.compare(I, N, Lit) != 0)
      return false;
    I += N;
    return true;
  }
  bool string() {
    if (!consume('"'))
      return false;
    while (I < S.size() && S[I] != '"') {
      if (S[I] == '\\') {
        ++I;
        if (I >= S.size())
          return false;
        if (S[I] == 'u') {
          for (int K = 0; K < 4; ++K)
            if (++I >= S.size() ||
                !std::isxdigit(static_cast<unsigned char>(S[I])))
              return false;
        }
      }
      ++I;
    }
    return consume('"');
  }
  bool number() {
    size_t Begin = I;
    if (I < S.size() && S[I] == '-')
      ++I;
    while (I < S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
      ++I;
    if (I == Begin || (Begin + 1 == I && S[Begin] == '-'))
      return false;
    if (consume('.')) {
      if (I >= S.size() || !std::isdigit(static_cast<unsigned char>(S[I])))
        return false;
      while (I < S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
        ++I;
    }
    if (I < S.size() && (S[I] == 'e' || S[I] == 'E')) {
      ++I;
      if (I < S.size() && (S[I] == '+' || S[I] == '-'))
        ++I;
      if (I >= S.size() || !std::isdigit(static_cast<unsigned char>(S[I])))
        return false;
      while (I < S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
        ++I;
    }
    return true;
  }
  bool value() {
    skipWs();
    if (I >= S.size())
      return false;
    switch (S[I]) {
    case '{': {
      ++I;
      skipWs();
      if (consume('}'))
        return true;
      do {
        skipWs();
        if (!string())
          return false;
        skipWs();
        if (!consume(':') || !value())
          return false;
        skipWs();
      } while (consume(','));
      return consume('}');
    }
    case '[': {
      ++I;
      skipWs();
      if (consume(']'))
        return true;
      do {
        if (!value())
          return false;
        skipWs();
      } while (consume(','));
      return consume(']');
    }
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
};

class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    TraceRecorder::instance().clear();
    TraceRecorder::instance().setEnabled(true);
    MetricsRegistry::instance().clear();
    MetricsRegistry::instance().setEnabled(true);
  }
  void TearDown() override {
    TraceRecorder::instance().setEnabled(false);
    TraceRecorder::instance().clear();
    MetricsRegistry::instance().setEnabled(false);
    MetricsRegistry::instance().clear();
  }
};

const TraceEvent *findEvent(const std::vector<TraceEvent> &Events,
                            const std::string &Name) {
  for (const TraceEvent &E : Events)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

} // namespace

TEST_F(ObsTest, SpansNestAndRecordDepth) {
  {
    Span Outer("outer");
    {
      Span Mid("mid");
      { Span Inner("inner"); }
    }
    { Span Sibling("sibling"); }
  }
  std::vector<TraceEvent> Events = TraceRecorder::instance().snapshot();
  ASSERT_EQ(Events.size(), 4u);
  const TraceEvent *Outer = findEvent(Events, "outer");
  const TraceEvent *Mid = findEvent(Events, "mid");
  const TraceEvent *Inner = findEvent(Events, "inner");
  const TraceEvent *Sibling = findEvent(Events, "sibling");
  ASSERT_TRUE(Outer && Mid && Inner && Sibling);
  EXPECT_EQ(Outer->Depth, 0);
  EXPECT_EQ(Mid->Depth, 1);
  EXPECT_EQ(Inner->Depth, 2);
  EXPECT_EQ(Sibling->Depth, 1);
  // Containment: each child's window lies inside its parent's.
  EXPECT_GE(Mid->StartUs, Outer->StartUs);
  EXPECT_LE(Mid->StartUs + Mid->DurUs, Outer->StartUs + Outer->DurUs + 1.0);
  EXPECT_GE(Inner->StartUs, Mid->StartUs);
  EXPECT_LE(Inner->StartUs + Inner->DurUs, Mid->StartUs + Mid->DurUs + 1.0);
}

TEST_F(ObsTest, CloseReturnsTheRecordedDuration) {
  Span S("timed");
  double Sec = S.close();
  EXPECT_GE(Sec, 0.0);
  // close() is idempotent and stable.
  EXPECT_EQ(S.close(), Sec);
  std::vector<TraceEvent> Events = TraceRecorder::instance().snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_NEAR(Events[0].DurUs, Sec * 1e6, 1e-6);
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  TraceRecorder::instance().setEnabled(false);
  {
    Span S("invisible");
    S.arg("key", "value");
    EXPECT_GE(S.close(), 0.0); // timing still works for derived bookkeeping
  }
  EXPECT_EQ(TraceRecorder::instance().eventCount(), 0u);

  MetricsRegistry::instance().setEnabled(false);
  MetricsRegistry::instance().addCounter("nope");
  MetricsRegistry::instance().setGauge("nope", 1.0);
  MetricsRegistry::instance().observe("nope", 0.5);
  EXPECT_EQ(MetricsRegistry::instance().counterValue("nope"), 0u);
  EXPECT_FALSE(MetricsRegistry::instance().gaugeValue("nope").has_value());
  EXPECT_FALSE(MetricsRegistry::instance().histogram("nope").has_value());
}

TEST_F(ObsTest, SpanArgsAppearInExport) {
  {
    Span S("generate", "stage3");
    S.arg("target", "RISCV");
  }
  std::string Json = TraceRecorder::instance().exportChromeTrace();
  EXPECT_NE(Json.find("\"generate\""), std::string::npos);
  EXPECT_NE(Json.find("\"stage3\""), std::string::npos);
  EXPECT_NE(Json.find("\"target\":\"RISCV\""), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceJsonRoundTrip) {
  {
    Span A("outer \"quoted\" name");
    A.arg("path", "a\\b\nnewline");
    Span B("inner");
  }
  std::string Json = TraceRecorder::instance().exportChromeTrace();
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json;
  // The Chrome trace envelope chrome://tracing and Perfetto expect.
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(Json.find("\"dur\":"), std::string::npos);
}

TEST_F(ObsTest, CountersAndGauges) {
  auto &M = MetricsRegistry::instance();
  M.addCounter("hits");
  M.addCounter("hits", 4);
  EXPECT_EQ(M.counterValue("hits"), 5u);
  EXPECT_EQ(M.counterValue("missing"), 0u);
  M.setGauge("loss", 0.75);
  M.setGauge("loss", 0.25);
  ASSERT_TRUE(M.gaugeValue("loss").has_value());
  EXPECT_DOUBLE_EQ(*M.gaugeValue("loss"), 0.25);
  EXPECT_EQ(M.metricCount(), 2u);
}

TEST_F(ObsTest, HistogramBucketing) {
  auto &M = MetricsRegistry::instance();
  M.defineHistogram("conf", 0.0, 1.0, 10);
  M.observe("conf", 0.0);   // bucket 0
  M.observe("conf", 0.05);  // bucket 0
  M.observe("conf", 0.55);  // bucket 5
  M.observe("conf", 0.999); // bucket 9
  M.observe("conf", 1.0);   // >= hi clamps into the last bucket
  M.observe("conf", -3.0);  // < lo clamps into the first bucket
  std::optional<Histogram> H = M.histogram("conf");
  ASSERT_TRUE(H.has_value());
  ASSERT_EQ(H->Buckets.size(), 10u);
  EXPECT_EQ(H->Buckets[0], 3u);
  EXPECT_EQ(H->Buckets[5], 1u);
  EXPECT_EQ(H->Buckets[9], 2u);
  EXPECT_EQ(H->Count, 6u);
  EXPECT_DOUBLE_EQ(H->MinSeen, -3.0);
  EXPECT_DOUBLE_EQ(H->MaxSeen, 1.0);
  uint64_t Total = 0;
  for (uint64_t B : H->Buckets)
    Total += B;
  EXPECT_EQ(Total, H->Count);
}

TEST_F(ObsTest, ObserveAutoDefinesWithGivenShape) {
  auto &M = MetricsRegistry::instance();
  M.observe("tokens", 30.0, 0.0, 60.0, 6);
  M.observe("tokens", 59.0, 0.0, 60.0, 6); // shape from the first call wins
  std::optional<Histogram> H = M.histogram("tokens");
  ASSERT_TRUE(H.has_value());
  ASSERT_EQ(H->Buckets.size(), 6u);
  EXPECT_EQ(H->Buckets[3], 1u);
  EXPECT_EQ(H->Buckets[5], 1u);
  // The bare overload defaults to 10 buckets over [0, 1).
  M.observe("unit", 0.31);
  std::optional<Histogram> U = M.histogram("unit");
  ASSERT_TRUE(U.has_value());
  ASSERT_EQ(U->Buckets.size(), 10u);
  EXPECT_EQ(U->Buckets[3], 1u);
}

TEST_F(ObsTest, MetricsJsonExportIsValid) {
  auto &M = MetricsRegistry::instance();
  M.addCounter("gen.statements", 12);
  M.setGauge("train.examples_per_sec", 0.125);
  M.observe("gen.confidence", 0.7);
  std::string Json = M.exportJson();
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json;
  EXPECT_NE(Json.find("\"gen.statements\": 12"), std::string::npos);
  EXPECT_NE(Json.find("\"train.examples_per_sec\""), std::string::npos);
  EXPECT_NE(Json.find("\"gen.confidence\""), std::string::npos);
  // Empty registries still export valid JSON.
  M.clear();
  EXPECT_TRUE(JsonChecker(M.exportJson()).valid());
}

TEST_F(ObsTest, TextSummaryListsEveryMetric) {
  auto &M = MetricsRegistry::instance();
  M.addCounter("gen.functions", 3);
  M.setGauge("stage1.vocab_size", 512);
  M.observe("gen.confidence", 0.9);
  std::string Text = M.textSummary();
  EXPECT_NE(Text.find("gen.functions"), std::string::npos);
  EXPECT_NE(Text.find("stage1.vocab_size"), std::string::npos);
  EXPECT_NE(Text.find("gen.confidence"), std::string::npos);
  EXPECT_NE(Text.find("histogram"), std::string::npos);
}

TEST_F(ObsTest, ThreadSafetySmoke) {
  auto &M = MetricsRegistry::instance();
  constexpr int Threads = 8;
  constexpr int PerThread = 200;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&M, T] {
      for (int I = 0; I < PerThread; ++I) {
        Span S("worker");
        S.arg("thread", std::to_string(T));
        M.addCounter("work.items");
        M.observe("work.values",
                  static_cast<double>(I % 100) / 100.0);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(TraceRecorder::instance().eventCount(),
            static_cast<size_t>(Threads * PerThread));
  EXPECT_EQ(M.counterValue("work.items"),
            static_cast<uint64_t>(Threads * PerThread));
  std::optional<Histogram> H = M.histogram("work.values");
  ASSERT_TRUE(H.has_value());
  EXPECT_EQ(H->Count, static_cast<uint64_t>(Threads * PerThread));
  // The concurrent trace still exports valid JSON.
  EXPECT_TRUE(JsonChecker(TraceRecorder::instance().exportChromeTrace())
                  .valid());
}

TEST_F(ObsTest, SpanDepthSurvivesDisableMidSpan) {
  auto &R = TraceRecorder::instance();
  {
    Span Outer("outer");
    R.setEnabled(false);
    // Constructed while off: records nothing and must not hold a depth slot.
    { Span Hidden("hidden"); }
    R.setEnabled(true);
    { Span Inner("inner"); }
  }
  { Span After("after"); }
  std::vector<TraceEvent> Events = R.snapshot();
  EXPECT_EQ(findEvent(Events, "hidden"), nullptr);
  const TraceEvent *Outer = findEvent(Events, "outer");
  const TraceEvent *Inner = findEvent(Events, "inner");
  const TraceEvent *After = findEvent(Events, "after");
  ASSERT_TRUE(Outer && Inner && After);
  EXPECT_EQ(Outer->Depth, 0);
  EXPECT_EQ(Inner->Depth, 1); // outer still holds its slot across the toggle
  EXPECT_EQ(After->Depth, 0);
}

TEST_F(ObsTest, SpanDepthSurvivesEnableMidSpan) {
  auto &R = TraceRecorder::instance();
  R.setEnabled(false);
  {
    Span Untracked("untracked"); // never incremented the depth counter...
    R.setEnabled(true);
    { Span Inner("inner"); }
  } // ...so closing it while enabled must not decrement either
  { Span After("after"); }
  std::vector<TraceEvent> Events = R.snapshot();
  EXPECT_EQ(findEvent(Events, "untracked"), nullptr);
  const TraceEvent *Inner = findEvent(Events, "inner");
  const TraceEvent *After = findEvent(Events, "after");
  ASSERT_TRUE(Inner && After);
  EXPECT_EQ(Inner->Depth, 0);
  EXPECT_EQ(After->Depth, 0);
}

TEST_F(ObsTest, TraceExportEscapesControlAndNonAscii) {
  {
    Span S("ctrl\x01name");
    S.arg("path", "tab\there\x1f");
    S.arg("utf8", "s\xC3\xA9quence"); // "séquence", raw UTF-8 bytes
  }
  std::string Trace = TraceRecorder::instance().exportChromeTrace();
  EXPECT_TRUE(JsonChecker(Trace).valid()) << Trace;
  EXPECT_NE(Trace.find("\\u0001"), std::string::npos);
  EXPECT_NE(Trace.find("\\u001f"), std::string::npos);
  EXPECT_NE(Trace.find("\\t"), std::string::npos);
  // Multi-byte UTF-8 passes through unescaped (JSON strings are UTF-8).
  EXPECT_NE(Trace.find("s\xC3\xA9quence"), std::string::npos);
  // The strict parser (which rejects unescaped control characters) agrees.
  EXPECT_TRUE(vega::Json::parse(Trace).isOk());
}

TEST_F(ObsTest, ExportedTidsAreDenseAndCollisionFree) {
  constexpr int Threads = 6;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([] { Span S("tid-span"); });
  for (std::thread &T : Pool)
    T.join();
  std::set<uint64_t> RawIds;
  for (const TraceEvent &E : TraceRecorder::instance().snapshot())
    RawIds.insert(E.ThreadId);
  std::string Trace = TraceRecorder::instance().exportChromeTrace();
  std::set<long> Tids;
  const std::string Key = "\"tid\":";
  for (size_t Pos = Trace.find(Key); Pos != std::string::npos;
       Pos = Trace.find(Key, Pos + Key.size()))
    Tids.insert(std::atol(Trace.c_str() + Pos + Key.size()));
  // One dense tid per distinct thread — no hash folding, no collisions —
  // numbered 0..N-1 in order of first appearance.
  ASSERT_EQ(Tids.size(), RawIds.size());
  EXPECT_EQ(*Tids.begin(), 0);
  EXPECT_EQ(*Tids.rbegin(), static_cast<long>(Tids.size()) - 1);
}

TEST_F(ObsTest, EmptyArgsEventParsesStrictly) {
  { Span S("bare"); }
  std::string Trace = TraceRecorder::instance().exportChromeTrace();
  StatusOr<vega::Json> Parsed = vega::Json::parse(Trace);
  ASSERT_TRUE(Parsed.isOk()) << Trace;
  const vega::Json *Events = Parsed->get("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  ASSERT_EQ(Events->size(), 1u);
  EXPECT_EQ(Events->at(0).getString("name"), "bare");
  const vega::Json *Args = Events->at(0).get("args");
  ASSERT_TRUE(Args && Args->isObject());
}

TEST_F(ObsTest, HistogramQuantiles) {
  Histogram H;
  H.Lo = 0.0;
  H.Hi = 100.0;
  H.Buckets.assign(100, 0);
  for (int I = 0; I < 100; ++I)
    H.observe(static_cast<double>(I) + 0.5);
  EXPECT_NEAR(H.quantile(0.50), 50.0, 1.5);
  EXPECT_NEAR(H.quantile(0.95), 95.0, 1.5);
  EXPECT_NEAR(H.quantile(0.99), 99.0, 1.5);
  // Estimates clamp to the observed range and are monotone in Q.
  EXPECT_GE(H.quantile(0.0), H.MinSeen);
  EXPECT_LE(H.quantile(1.0), H.MaxSeen);
  EXPECT_LE(H.quantile(0.5), H.quantile(0.95));
  EXPECT_LE(H.quantile(0.95), H.quantile(0.99));

  Histogram L;
  L.Lo = 0.01;
  L.Hi = 1e5;
  L.LogScale = true;
  L.Buckets.assign(64, 0);
  for (double V : {1.0, 10.0, 100.0, 1000.0})
    L.observe(V);
  EXPECT_EQ(L.Count, 4u);
  // Four observations a decade apart land in four distinct log buckets.
  EXPECT_NE(L.bucketFor(1.0), L.bucketFor(10.0));
  EXPECT_NE(L.bucketFor(10.0), L.bucketFor(100.0));
  double P50 = L.quantile(0.5);
  EXPECT_GE(P50, 1.0);
  EXPECT_LE(P50, 1000.0);
  EXPECT_LE(P50, L.quantile(0.99));

  Histogram Empty;
  Empty.Buckets.assign(4, 0);
  EXPECT_DOUBLE_EQ(Empty.quantile(0.5), 0.0);
}

TEST_F(ObsTest, HistogramMergeRequiresSameShape) {
  Histogram A, B;
  A.Lo = B.Lo = 0.0;
  A.Hi = B.Hi = 10.0;
  A.Buckets.assign(10, 0);
  B.Buckets.assign(10, 0);
  A.observe(1.0);
  A.observe(2.0);
  B.observe(7.0);
  ASSERT_TRUE(A.sameShape(B));
  ASSERT_TRUE(A.merge(B));
  EXPECT_EQ(A.Count, 3u);
  EXPECT_DOUBLE_EQ(A.Sum, 10.0);
  EXPECT_EQ(A.Buckets[7], 1u);
  EXPECT_DOUBLE_EQ(A.MinSeen, 1.0);
  EXPECT_DOUBLE_EQ(A.MaxSeen, 7.0);
  Histogram C;
  C.Lo = 0.0;
  C.Hi = 5.0; // different range: refuse, change nothing
  C.Buckets.assign(10, 0);
  C.observe(3.0);
  EXPECT_FALSE(A.sameShape(C));
  EXPECT_FALSE(A.merge(C));
  EXPECT_EQ(A.Count, 3u);
  EXPECT_DOUBLE_EQ(A.Sum, 10.0);
}

TEST_F(ObsTest, LabeledCountersCanonicalizeKeyOrder) {
  auto &M = MetricsRegistry::instance();
  M.addCounter("serve.requests", {{"method", "generate"}, {"code", "ok"}});
  // Reversed label order hits the same series.
  M.addCounter("serve.requests", {{"code", "ok"}, {"method", "generate"}});
  std::string Key = MetricsRegistry::labeledName(
      "serve.requests", {{"method", "generate"}, {"code", "ok"}});
  EXPECT_EQ(Key, "serve.requests{code=\"ok\",method=\"generate\"}");
  EXPECT_EQ(M.counterValue(Key), 2u);
  // The unlabeled base counter is a separate series.
  EXPECT_EQ(M.counterValue("serve.requests"), 0u);
  // Label values are quote-escaped in the canonical key.
  EXPECT_EQ(MetricsRegistry::labeledName("n", {{"k", "a\"b"}}),
            "n{k=\"a\\\"b\"}");
}

TEST_F(ObsTest, DeclaredShapesAreLazyAndSurviveClear) {
  auto &M = MetricsRegistry::instance();
  M.declareHistogram("lat.test_ms", 1.0, 1000.0, 16, /*LogScale=*/true);
  // A declaration alone creates no metric (clear()+N adds still count N).
  EXPECT_EQ(M.metricCount(), 0u);
  EXPECT_FALSE(M.histogram("lat.test_ms").has_value());
  // The call-site fallback shape loses to the central declaration.
  M.observe("lat.test_ms", 50.0, 0.0, 1.0, 4);
  std::optional<Histogram> H = M.histogram("lat.test_ms");
  ASSERT_TRUE(H.has_value());
  EXPECT_EQ(H->Buckets.size(), 16u);
  EXPECT_TRUE(H->LogScale);
  EXPECT_EQ(H->Count, 1u);
  M.clear();
  M.observe("lat.test_ms", 2.0); // declaration survives clear()
  H = M.histogram("lat.test_ms");
  ASSERT_TRUE(H.has_value());
  EXPECT_EQ(H->Buckets.size(), 16u);
  EXPECT_TRUE(H->LogScale);
  // The standard serve shapes are pinned by the registry constructor.
  M.observe("serve.request_ms", 12.0);
  std::optional<Histogram> S = M.histogram("serve.request_ms");
  ASSERT_TRUE(S.has_value());
  EXPECT_TRUE(S->LogScale);
  EXPECT_EQ(S->Buckets.size(), 64u);
}

TEST_F(ObsTest, PrometheusExposition) {
  auto &M = MetricsRegistry::instance();
  M.addCounter("serve.requests", 3);
  M.addCounter("serve.requests", {{"method", "generate"}, {"code", "ok"}}, 2);
  M.setGauge("train.loss", 0.5);
  M.observe("gen.confidence", 0.25);
  M.observe("gen.confidence", 0.75);
  std::string Prom = M.exportPrometheus();
  EXPECT_NE(Prom.find("# TYPE vega_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(Prom.find("\nvega_serve_requests_total 3\n"), std::string::npos);
  EXPECT_NE(Prom.find(
                "vega_serve_requests_total{code=\"ok\",method=\"generate\"} 2"),
            std::string::npos);
  EXPECT_NE(Prom.find("# TYPE vega_train_loss gauge"), std::string::npos);
  EXPECT_NE(Prom.find("vega_train_loss 0.5"), std::string::npos);
  EXPECT_NE(Prom.find("# TYPE vega_gen_confidence summary"),
            std::string::npos);
  EXPECT_NE(Prom.find("vega_gen_confidence{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(Prom.find("vega_gen_confidence_sum 1\n"), std::string::npos);
  EXPECT_NE(Prom.find("vega_gen_confidence_count 2\n"), std::string::npos);
  // Labeled + unlabeled series share one family: exactly one TYPE line.
  size_t First = Prom.find("# TYPE vega_serve_requests_total");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Prom.find("# TYPE vega_serve_requests_total", First + 1),
            std::string::npos);
}

TEST_F(ObsTest, SpansCarryRequestIdAndFeedFlightRecorder) {
  RequestContext Ctx("generate");
  {
    RequestScope Scope(&Ctx);
    Span S("gen.work");
  }
  std::vector<TraceEvent> Events = TraceRecorder::instance().snapshot();
  const TraceEvent *E = findEvent(Events, "gen.work");
  ASSERT_TRUE(E);
  bool HasReq = false;
  for (const auto &[K, V] : E->Args)
    if (K == "req" && V == std::to_string(Ctx.id()))
      HasReq = true;
  EXPECT_TRUE(HasReq);
  // The flight-recorder ring captures even with the global recorder off.
  TraceRecorder::instance().setEnabled(false);
  {
    RequestScope Scope(&Ctx);
    Span S("gen.hidden");
  }
  std::vector<RequestContext::SpanRecord> Spans = Ctx.spans();
  ASSERT_EQ(Spans.size(), 2u);
  EXPECT_EQ(Spans[0].Name, "gen.work");
  EXPECT_EQ(Spans[1].Name, "gen.hidden");
  EXPECT_GE(Spans[1].StartUs, 0.0);
  EXPECT_EQ(Ctx.spansRecorded(), 2u);
  EXPECT_EQ(Ctx.spansDropped(), 0u);
  // Outside any scope, spans attribute to nothing.
  { Span S("gen.orphan"); }
  EXPECT_EQ(Ctx.spansRecorded(), 2u);
}

TEST_F(ObsTest, RequestRingEvictsOldest) {
  RequestContext Ctx("m", /*RingCapacity=*/2);
  RequestScope Scope(&Ctx);
  { Span A("a"); }
  { Span B("b"); }
  { Span C("c"); }
  std::vector<RequestContext::SpanRecord> Spans = Ctx.spans();
  ASSERT_EQ(Spans.size(), 2u);
  EXPECT_EQ(Spans[0].Name, "b"); // chronological, oldest evicted
  EXPECT_EQ(Spans[1].Name, "c");
  EXPECT_EQ(Ctx.spansRecorded(), 3u);
  EXPECT_EQ(Ctx.spansDropped(), 1u);
}

TEST_F(ObsTest, RequestDeadlines) {
  RequestContext Ctx;
  EXPECT_FALSE(Ctx.hasDeadline());
  EXPECT_FALSE(Ctx.expired());
  Ctx.setDeadlineAfterMs(0.0); // non-positive leaves it deadline-free
  EXPECT_FALSE(Ctx.hasDeadline());
  Ctx.setDeadlineAfterMs(1e-6); // relative to creation: already past
  EXPECT_TRUE(Ctx.hasDeadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(Ctx.expired());
  RequestContext Roomy;
  Roomy.setDeadlineAfterMs(60000.0);
  EXPECT_TRUE(Roomy.hasDeadline());
  EXPECT_FALSE(Roomy.expired());
}

TEST_F(ObsTest, RouterBindsFirstWinsAndRebinds) {
  RequestContext A("one"), B("two");
  RequestRouter Router;
  Router.bind("RISCV", &A);
  Router.bind("RISCV", &B); // dedup: the first submitter keeps the work
  Router.bind("XCORE", &B);
  EXPECT_EQ(Router.size(), 2u);
  EXPECT_EQ(Router.lookup("RISCV"), &A);
  EXPECT_EQ(Router.lookup("XCORE"), &B);
  EXPECT_EQ(Router.lookup("missing"), nullptr);
  EXPECT_EQ(boundRequest("RISCV"), nullptr); // no router installed yet
  RouterScope Scope(&Router);
  EXPECT_EQ(boundRequest("RISCV"), &A);
  {
    RequestScope Rebind(boundRequest("XCORE"));
    EXPECT_EQ(RequestContext::current(), &B);
    // A null rebind (unbound key) keeps the current context.
    RequestScope Keep(boundRequest("missing"));
    EXPECT_EQ(RequestContext::current(), &B);
  }
  EXPECT_EQ(RequestContext::current(), nullptr);
}

TEST_F(ObsTest, RequestContextHopsAcrossThreadPool) {
  RequestContext Ctx("generate");
  RequestRouter Router;
  Router.bind("T", &Ctx);
  ThreadPool Pool(4);
  std::atomic<int> Attributed{0};
  {
    RequestScope Scope(&Ctx);
    RouterScope RScope(&Router);
    Pool.parallelFor(32, [&](size_t) {
      if (RequestContext::current() == &Ctx && boundRequest("T") == &Ctx)
        Attributed.fetch_add(1, std::memory_order_relaxed);
      Span S("gen.lane");
    });
  }
  // Every lane saw the caller's ambient request + router.
  EXPECT_EQ(Attributed.load(), 32);
  EXPECT_EQ(Ctx.spansRecorded(), 32u);
  // Worker lanes restored their prior (empty) context after the batch.
  std::atomic<int> Clean{0};
  Pool.parallelFor(32, [&](size_t) {
    if (RequestContext::current() == nullptr && !RequestRouter::current())
      Clean.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Clean.load(), 32);
}

TEST_F(ObsTest, WriteFilesRoundTrip) {
  {
    Span S("file-span");
  }
  MetricsRegistry::instance().addCounter("file.counter");
  std::string TracePath = ::testing::TempDir() + "obs_trace.json";
  std::string MetricsPath = ::testing::TempDir() + "obs_metrics.json";
  ASSERT_TRUE(TraceRecorder::instance().writeChromeTrace(TracePath));
  ASSERT_TRUE(MetricsRegistry::instance().writeJson(MetricsPath));
  auto Slurp = [](const std::string &Path) {
    std::ifstream In(Path);
    std::stringstream Buf;
    Buf << In.rdbuf();
    return Buf.str();
  };
  std::string Trace = Slurp(TracePath);
  std::string Metrics = Slurp(MetricsPath);
  EXPECT_TRUE(JsonChecker(Trace).valid());
  EXPECT_TRUE(JsonChecker(Metrics).valid());
  EXPECT_NE(Trace.find("file-span"), std::string::npos);
  EXPECT_NE(Metrics.find("file.counter"), std::string::npos);
}
