# Empty dependencies file for ablation_model_capacity.
# This may be replaced when dependencies are built.
