file(REMOVE_RECURSE
  "libvega_feature.a"
)
