//===- model/CodeBE.h - The CodeBE transformer -------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CodeBE (§3.3): a transformer encoder-decoder fine-tuned to map feature
/// vectors (input sequences) to confidence-scored statements (output
/// sequences). The paper fine-tunes UniXcoder (12 layers / 125M params on
/// 8×V100); this is the architecturally equivalent laptop-scale model:
/// token+position embeddings with word-piece composition (BPE stand-in),
/// multi-head self/cross attention, and a pointer/copy head — the
/// copy-from-input ability a large pre-trained code model brings for free.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_MODEL_CODEBE_H
#define VEGA_MODEL_CODEBE_H

#include "model/Autograd.h"
#include "model/Vocab.h"

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>

namespace vega {

namespace model {
class Trainer;
} // namespace model

/// Numeric precision of the inference-time vocabulary projection (the
/// dominant GEMM of every decode step). FP32 is the training path and the
/// default; INT8 quantizes the combined-embedding matrix per row (symmetric
/// absmax scales) and accumulates in int32, so it is bit-deterministic at
/// any thread count but NOT bit-equal to FP32 — see DESIGN.md §14 for the
/// exact contract. Checkpoints always store fp32 weights regardless of the
/// active precision.
enum class Precision { FP32, INT8 };

/// Canonical lowercase name ("fp32" / "int8").
const char *precisionName(Precision P);

/// Parses a canonical name; std::nullopt for anything else.
std::optional<Precision> parsePrecision(std::string_view Name);

/// Hyperparameters (paper §4.1.2 scaled down; see DESIGN.md §2).
struct CodeBEConfig {
  int DModel = 64;
  int Heads = 4;
  int EncLayers = 2;
  int DecLayers = 2;
  int FFDim = 192;
  int MaxSrcLen = 128;
  int MaxDstLen = 48;
  float LearningRate = 1e-3f;
  int Epochs = 2;
  int BatchSize = 8;
  uint64_t Seed = 42;

  /// A stable fingerprint of the architecture (for cache validation).
  uint64_t fingerprint() const;
};

/// One fine-tuning example: input sequence I_k → output sequence O_k.
struct TrainPair {
  std::vector<int> Src;
  std::vector<int> Dst; ///< starts with a CS bucket token, ends with [EOS]
};

/// The sequence-to-sequence model.
class CodeBE {
public:
  CodeBE(Vocab Vocabulary, CodeBEConfig Config);

  /// Fine-tunes on \p Data (teacher forcing, Adam, cross-entropy — §4.1.2).
  /// \p OnEpoch, when set, receives (epoch, meanLoss) after each epoch.
  /// Legacy convenience wrapper: builds model::TrainOptions from Config
  /// (serial, jobs=1) and delegates to model::Trainer — use the Trainer
  /// directly for explicit schedules, parallel training, and diagnostics.
  void train(const std::vector<TrainPair> &Data,
             const std::function<void(int, double)> &OnEpoch = nullptr);

  /// Greedy decode for \p Src. When \p Allowed is non-null (one byte per
  /// vocab id), decoding is constrained to the allowed set — the
  /// grammar-constrained decoding used during backend generation ([EOS] and
  /// the CS buckets are always allowed).
  struct Decoded {
    std::vector<int> Tokens;   ///< without the trailing [EOS]
    std::vector<double> Probs; ///< per-token chosen probability
  };

  /// Template-guided decoding plan: per output position, the set of
  /// admissible token ids (empty set = fall back to \p Allowed /
  /// unconstrained). Positions beyond the plan force [EOS]. This is how
  /// Stage 3 "customizes function templates": the skeleton is fixed, the
  /// model chooses confidence buckets and placeholder fillers.
  struct DecodePlan {
    std::vector<std::vector<int>> Steps;
    /// Optional per-position additive logit biases (e.g. the lexical
    /// affinity prior standing in for pre-trained subword morphology;
    /// DESIGN.md §2). Indexed like Steps; missing entries mean no bias.
    std::vector<std::map<int, float>> Bias;
  };

  /// When \p WithProbs is false, the per-token probability pass (a full
  /// softmax over the vocabulary at every step) is skipped and
  /// Decoded::Probs comes back empty; token choice is unaffected. Stage 3
  /// reads the confidence bucket, not the probabilities, so it decodes
  /// with WithProbs=false.
  Decoded generate(const std::vector<int> &Src,
                   const std::vector<uint8_t> *Allowed = nullptr,
                   const DecodePlan *Plan = nullptr, bool WithProbs = true);

  /// One member of a group decode (pointers must outlive the call).
  struct GroupRequest {
    const std::vector<int> *Src = nullptr;
    const std::vector<uint8_t> *Allowed = nullptr;
    const DecodePlan *Plan = nullptr;
  };

  /// Decodes every request, sharing work across the group when it is safe:
  /// requests with identical Src (and identical Allowed sets) run the
  /// encoder and the cross-attention projections once, decode the longest
  /// common prefix of their plans (steps AND biases must agree) once into a
  /// shared KV prefix, and fork copy-on-write per request for the
  /// divergent tail. Results are byte-identical to calling generate() per
  /// request with the same WithProbs — sharing only skips recomputation,
  /// never changes a choice. Falls back to per-request generate() whenever
  /// sharing cannot apply (mixed Src, WithProbs, FullRecompute mode, or
  /// prefix sharing disabled). Emits gen.prefix.hits / gen.prefix.forks
  /// counters and the gen.prefix_reuse_tokens histogram when sharing fires.
  std::vector<Decoded> generateGroup(const std::vector<GroupRequest> &Reqs,
                                     bool WithProbs = false);

  /// One in-flight KV-cached greedy decode, advanced one output position at
  /// a time by decodeStepMany(). A stream owns its decode scratch (KV cache,
  /// presence row, partial result), so any number of streams can be stepped
  /// in any interleaving; the Allowed/Plan pointers passed to beginDecode()
  /// are borrowed and must outlive the stream (the GroupRequest contract).
  /// Move-only.
  class DecodeStream {
  public:
    DecodeStream(DecodeStream &&Other) noexcept;
    DecodeStream &operator=(DecodeStream &&Other) noexcept;
    DecodeStream(const DecodeStream &) = delete;
    DecodeStream &operator=(const DecodeStream &) = delete;
    ~DecodeStream();

    /// True once the decode ended (EOS, nothing admissible, plan exhausted,
    /// or MaxDstLen reached). Stepping a done stream is a no-op.
    bool done() const;

    /// Tokens chosen so far (the final result once done()).
    const Decoded &partial() const;

  private:
    friend class CodeBE;
    DecodeStream();
    struct Impl;
    std::unique_ptr<Impl> I;
  };

  /// Starts a stream for \p Src: runs the encoder, builds the
  /// cross-attention projections and the KV scratch, and leaves the stream
  /// ready for its first step. Streams always decode on the KV-cache path
  /// (like decodeBeam), regardless of the DecodeMode knob. This is the
  /// step-level multi-request decode entry point: the serve scheduler and
  /// generateGroup() co-step many streams through decodeStepMany(), and
  /// generate() itself is one stream run to completion, so solo and
  /// co-batched decodes are the same code path and byte-identical.
  DecodeStream beginDecode(const std::vector<int> &Src,
                           const std::vector<uint8_t> *Allowed = nullptr,
                           const DecodePlan *Plan = nullptr,
                           bool WithProbs = false);

  /// Advances every live stream in \p Streams by exactly one output
  /// position — one KV-cached decoder pass per stream — retiring streams
  /// that end (EOS / plan exhausted / MaxDstLen). Done streams are skipped,
  /// so callers can admit new streams and retire finished ones between
  /// calls (continuous batching). Streams are independent: the result bytes
  /// of each stream never depend on which other streams share a call.
  /// Returns the number of streams still live after the step.
  size_t decodeStepMany(const std::vector<DecodeStream *> &Streams);

  /// Consumes the stream and returns its result, stepping it to completion
  /// first if it is not done. Emits no metrics — callers account for whole
  /// decodes (see generate()/generateGroup()).
  Decoded finishDecode(DecodeStream S);

  /// One ranked beam-search candidate.
  struct BeamHypothesis {
    std::vector<int> Tokens; ///< without the trailing [EOS]
    /// Sum of per-token log-probabilities under the same normalizer
    /// generate() uses for its confidence pass (plan biases included for
    /// the chosen token, so beam ranking agrees with greedy choice).
    double Score = 0.0;
  };

  /// Beam/top-k decoding for \p Src under the same constraints as
  /// generate(): up to \p Width hypotheses ranked best-first. Always runs
  /// on the KV-cache path (each hypothesis forks its own cache; the cross
  /// projections are shared read-only). Deterministic at any thread count:
  /// no RNG, and exact score ties resolve by expansion order (parent rank,
  /// then admissible-set order), so Width=1 reproduces the greedy decode.
  /// Duplicate token sequences are collapsed to their best-scoring copy.
  std::vector<BeamHypothesis> decodeBeam(const std::vector<int> &Src,
                                         int Width,
                                         const std::vector<uint8_t> *Allowed = nullptr,
                                         const DecodePlan *Plan = nullptr);

  /// Decode strategy. KVCache (the default) caches per-layer self-attention
  /// K/V rows and the cross-attention memory projections so each step does
  /// O(prefix) work instead of re-running the decoder over the whole prefix
  /// — bit-identical to FullRecompute because the causal mask zeroes future
  /// positions exactly (exp(-1e9) underflows to 0.0f) and every kernel
  /// keeps per-element accumulation order fixed. FullRecompute is kept as
  /// the reference path for equivalence tests and benchmarks.
  enum class DecodeMode { KVCache, FullRecompute };
  void setDecodeMode(DecodeMode M) { Mode = M; }
  DecodeMode decodeMode() const { return Mode; }

  /// Selects the inference precision (see vega::Precision). Weights are
  /// untouched — INT8 only swaps the vocabulary-projection GEMM for the
  /// quantized route, so switching back to FP32 restores bit-exact fp32
  /// behaviour. Not thread-safe against in-flight generate() calls.
  void setPrecision(Precision P);
  Precision precision() const { return Prec; }

  /// Enables/disables the decode fast paths that reuse work across plan
  /// positions and group members (pinned-step logit skip, group-level KV
  /// prefix sharing). On (the default) and off produce byte-identical
  /// output; off exists as the reference path for equivalence smokes.
  void setPrefixSharing(bool On) { PrefixShare = On; }
  bool prefixSharing() const { return PrefixShare; }

  /// Readies the model for concurrent generate() calls: forces the shared
  /// inference embedding cache fresh so worker threads never race to build
  /// it. generate() is safe to call from many threads afterwards, provided
  /// no train()/loadWeights() runs concurrently.
  void prepareGenerate();

  /// Fraction of pairs whose greedy decode exactly matches Dst (the paper's
  /// Exact Match score, §4.1.2).
  double exactMatch(const std::vector<TrainPair> &Data);

  const Vocab &vocab() const { return Vocabulary; }
  const CodeBEConfig &config() const { return Config; }

  /// Raw weight blob (for on-disk caching of the fine-tuned model).
  std::string saveWeights() const;

  /// Restores weights; false on shape mismatch.
  bool loadWeights(const std::string &Blob);

private:
  struct LinearP {
    TensorPtr W, B;
  };
  struct LNP {
    TensorPtr G, B;
  };
  struct MHAP {
    LinearP Q, K, V, O;
  };
  struct EncLayerP {
    MHAP Self;
    LNP N1;
    LinearP F1, F2;
    LNP N2;
  };
  struct DecLayerP {
    MHAP Self;
    LNP N1;
    MHAP Cross;
    LNP N2;
    LinearP F1, F2;
    LNP N3;
  };

  /// An immutable, refcount-shared run of decoded K/V rows (see
  /// KVCacheState in CodeBE.cpp).
  struct KVPrefix;
  /// Per-call incremental decode scratch (one per generate() invocation,
  /// so concurrent decodes never share mutable state).
  struct KVCacheState;

  TensorPtr linear(const TensorPtr &X, const LinearP &P);
  /// Feeds one token through the decoder using (and extending) the K/V
  /// cache; returns the new 1×DModel decoder output row.
  TensorPtr decodeStep(KVCacheState &St, int TokenId);
  TensorPtr attention(const TensorPtr &XQ, const TensorPtr &XKV,
                      const MHAP &P, const Tensor *Mask);
  TensorPtr encLayer(const TensorPtr &X, EncLayerP &L);
  TensorPtr decLayer(const TensorPtr &X, const TensorPtr &Memory,
                     DecLayerP &L, const Tensor *CausalMask);
  TensorPtr embed(const std::vector<int> &Ids, const TensorPtr &Pos);
  TensorPtr runEncoder(const std::vector<int> &Src);
  TensorPtr runDecoder(const TensorPtr &Memory, const std::vector<int> &DstIn);
  /// One-row-per-step decoding recomputes the source-presence bias tensor
  /// identically every step; presenceFor builds it once and logitsFor
  /// accepts it pre-computed (\p CachedPresence, matched on row count).
  TensorPtr presenceFor(int Rows, const std::vector<int> &SrcIds);
  TensorPtr logitsFor(const TensorPtr &DecOut, const TensorPtr &Memory,
                      const std::vector<int> &SrcIds, bool UseCombCache,
                      const TensorPtr &CachedPresence = nullptr,
                      const TensorPtr &CombOverride = nullptr);
  /// Builds the full differentiable tape for one training pair — the
  /// encoder/decoder/logits/loss slice the Trainer fans out per example.
  /// \p Comb is the batch-shared combined-embeddings node; returns the 1×1
  /// loss, or nullptr for untrainable (empty-sided) pairs.
  TensorPtr trainLoss(const TrainPair &Pair, const TensorPtr &Comb);
  /// Greedy constrained argmax over the last row of \p Logits at plan step
  /// \p Step (bias-adjusted), plus — when \p WithProbs — the fused
  /// online-softmax probability of the winner. Returns -1 when nothing is
  /// admissible.
  int chooseGreedy(const TensorPtr &Logits, const std::vector<uint8_t> *Allowed,
                   const DecodePlan *Plan, int Step, bool WithProbs,
                   double &Prob) const;
  /// Runs the KV-cache greedy loop over plan steps [Begin, End), extending
  /// \p St and appending chosen tokens to \p Result. \p PrevTok carries the
  /// last token fed to the decoder across calls. Returns true when the
  /// decode ended inside the range (EOS, no admissible token, or plan
  /// exhausted) — the caller must not continue it.
  bool decodeGreedyKV(KVCacheState &St, const std::vector<int> &Input,
                      const std::vector<uint8_t> *Allowed,
                      const DecodePlan *Plan, bool WithProbs, int Begin,
                      int End, const TensorPtr &PresenceRow, int &PrevTok,
                      Decoded &Result);
  /// Forks a stream off a sealed group-decode prefix: shares \p Proto's
  /// prefix chain and cross projections copy-on-write, seeds the partial
  /// result/previous token/step so the fork continues where the shared
  /// prefix stopped.
  DecodeStream forkDecode(const KVCacheState &Proto, const Decoded &PrefixOut,
                          int PrevTok, int Step, const std::vector<int> &Input,
                          const std::vector<uint8_t> *Allowed,
                          const DecodePlan *Plan,
                          const TensorPtr &PresenceRow);
  TensorPtr combinedEmbeddings();
  void refreshCombCache();
  /// Rebuilds the int8 quantization of the combined embeddings (per-row
  /// absmax scales over the same fp32 values refreshCombCache snapshots).
  void refreshQCombCache();
  std::vector<TensorPtr> parameters() const;
  std::unique_ptr<Tensor> causalMask(int Len) const;

  Vocab Vocabulary;
  CodeBEConfig Config;
  TensorPtr Etok, Epiece, EposSrc, EposDst;
  std::vector<EncLayerP> Enc;
  std::vector<DecLayerP> Dec;
  LinearP CopyProj;
  TensorPtr CopyGate;
  TensorPtr SrcBias; ///< learned boost for tokens present in the source
  TensorPtr CombCache; ///< no-grad combined embeddings for inference
  std::atomic<bool> CombDirty{true};
  /// Quantized mirror of CombCache for the INT8 route: per-row int8 codes
  /// plus one fp32 scale per vocabulary row. Rebuilt lazily under CombMu
  /// whenever the weights change (QCombDirty), like CombCache.
  std::vector<int8_t> QCombData;
  std::vector<float> QCombScale;
  std::atomic<bool> QCombDirty{true};
  std::mutex CombMu; ///< serializes CombCache/QComb refresh across threads
  DecodeMode Mode = DecodeMode::KVCache;
  Precision Prec = Precision::FP32;
  bool PrefixShare = true;

  /// The data-parallel training engine drives trainLoss/parameters/
  /// combinedEmbeddings directly.
  friend class model::Trainer;
};

} // namespace vega

#endif // VEGA_MODEL_CODEBE_H
