file(REMOVE_RECURSE
  "CMakeFiles/ablation_split_strategy.dir/ablation_split_strategy.cpp.o"
  "CMakeFiles/ablation_split_strategy.dir/ablation_split_strategy.cpp.o.d"
  "ablation_split_strategy"
  "ablation_split_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_split_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
