file(REMOVE_RECURSE
  "CMakeFiles/fig8_function_accuracy.dir/fig8_function_accuracy.cpp.o"
  "CMakeFiles/fig8_function_accuracy.dir/fig8_function_accuracy.cpp.o.d"
  "fig8_function_accuracy"
  "fig8_function_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_function_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
