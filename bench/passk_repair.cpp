//===- bench/passk_repair.cpp - pass@1 vs pass@k vs post-repair ----------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// The auto-repair headline: for each held-out evaluation target, greedy
/// pass@1 function accuracy, pass@k after one beam-repair round, final
/// post-repair accuracy at the fixed point, and the modeled residual
/// manual-repair hours before/after. Every accepted repair was validated by
/// the behavioural oracle, so post-repair >= pass@1 by construction; the
/// bench exists to measure how much of the paper's Table-3/4 manual effort
/// the engine absorbs. Writes BENCH_repair.json ("vega-repair-bench-1").
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "repair/RepairEngine.h"
#include "support/Json.h"
#include "support/TextTable.h"

#include <cstdio>
#include <string>

using namespace vega;

int main(int argc, char **argv) {
  std::string ReportPath = "BENCH_repair.json";
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    const std::string Prefix = "--report=";
    if (Arg.rfind(Prefix, 0) == 0)
      ReportPath = Arg.substr(Prefix.size());
  }

  repair::RepairOptions Opts; // beam 4, 2 rounds — the defaults everywhere
  TextTable Table;
  Table.setHeader({"Target", "pass@1", "pass@k", "post-repair", "Repaired",
                   "Hours A", "Hours B"});

  Json Targets = Json::array();
  for (const std::string &Target :
       TargetDatabase::evaluationTargetNames()) {
    const GeneratedBackend &Baseline = bench::generated(Target);
    repair::RepairEngine Engine(bench::system(), Opts);
    StatusOr<repair::RepairReport> Report = Engine.repairBackend(Baseline);
    if (!Report.isOk()) {
      std::fprintf(stderr, "passk_repair: %s: %s\n", Target.c_str(),
                   Report.status().toString().c_str());
      return Report.status().toExitCode();
    }

    double Pass1 = Report->BaselineEval.functionAccuracy();
    double PassK = Report->Rounds.empty()
                       ? Pass1
                       : Report->Rounds.front().FunctionAccuracy;
    double Post = Report->RepairedEval.functionAccuracy();

    Table.addRow({Target, TextTable::formatPercent(Pass1),
                  TextTable::formatPercent(PassK),
                  TextTable::formatPercent(Post),
                  std::to_string(Report->FunctionsRepaired) + "/" +
                      std::to_string(Report->FunctionsFlagged),
                  TextTable::formatDouble(Report->BaselineHoursA, 2) + " -> " +
                      TextTable::formatDouble(Report->RepairedHoursA, 2),
                  TextTable::formatDouble(Report->BaselineHoursB, 2) + " -> " +
                      TextTable::formatDouble(Report->RepairedHoursB, 2)});

    Json T = Json::object();
    T.set("target", Target);
    T.set("pass1", Pass1);
    T.set("passk", PassK);
    T.set("postRepair", Post);
    T.set("baselineStatementAccuracy",
          Report->BaselineEval.statementAccuracy());
    T.set("repairedStatementAccuracy",
          Report->RepairedEval.statementAccuracy());
    T.set("functionsFlagged",
          static_cast<uint64_t>(Report->FunctionsFlagged));
    T.set("functionsRepaired",
          static_cast<uint64_t>(Report->FunctionsRepaired));
    T.set("statementsAutoRepaired",
          static_cast<uint64_t>(Report->StatementsAutoRepaired));
    T.set("candidatesTried", static_cast<uint64_t>(Report->CandidatesTried));
    Json Rounds = Json::array();
    for (const repair::RoundStats &R : Report->Rounds) {
      Json Round = Json::object();
      Round.set("round", R.Round);
      Round.set("functionsRepaired",
                static_cast<uint64_t>(R.FunctionsRepaired));
      Round.set("functionAccuracy", R.FunctionAccuracy);
      Rounds.push(std::move(Round));
    }
    T.set("rounds", std::move(Rounds));
    Json Hours = Json::object();
    Json DevA = Json::object();
    DevA.set("baseline", Report->BaselineHoursA);
    DevA.set("repaired", Report->RepairedHoursA);
    Hours.set("developerA", std::move(DevA));
    Json DevB = Json::object();
    DevB.set("baseline", Report->BaselineHoursB);
    DevB.set("repaired", Report->RepairedHoursB);
    Hours.set("developerB", std::move(DevB));
    T.set("repairHours", std::move(Hours));
    Targets.push(std::move(T));
  }

  Json Doc = Json::object();
  Doc.set("schema", "vega-repair-bench-1");
  Json Options = Json::object();
  Options.set("beamWidth", Opts.BeamWidth);
  Options.set("maxRounds", Opts.MaxRounds);
  Options.set("csThreshold", Opts.CSThreshold);
  Doc.set("options", std::move(Options));
  Doc.set("epochs", bench::defaultEpochs());
  Doc.set("targets", std::move(Targets));

  std::printf("== pass@1 vs pass@k vs oracle-validated auto-repair ==\n%s\n",
              Table.render().c_str());
  std::printf("paper context: VEGA ships backends with ~71%% of functions "
              "correct and leaves the rest to manual triage via confidence "
              "scores (Tables 3-4); the repair engine automates that triage "
              "loop, so the accuracy delta here is manual effort absorbed "
              "by the oracle\n");

  if (FILE *F = std::fopen(ReportPath.c_str(), "w")) {
    std::string Dump = Doc.dump(2);
    std::fwrite(Dump.data(), 1, Dump.size(), F);
    std::fputc('\n', F);
    std::fclose(F);
    std::printf("report written to %s\n", ReportPath.c_str());
  } else {
    std::fprintf(stderr, "passk_repair: cannot write %s\n",
                 ReportPath.c_str());
    return 1;
  }
  return 0;
}
