//===- model/CodeBE.cpp - The CodeBE transformer ----------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "model/CodeBE.h"

#include "model/Trainer.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/RNG.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <set>

using namespace vega;

uint64_t CodeBEConfig::fingerprint() const {
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ULL;
  };
  Mix(static_cast<uint64_t>(DModel));
  Mix(static_cast<uint64_t>(Heads));
  Mix(static_cast<uint64_t>(EncLayers));
  Mix(static_cast<uint64_t>(DecLayers));
  Mix(static_cast<uint64_t>(FFDim));
  Mix(static_cast<uint64_t>(MaxSrcLen));
  Mix(static_cast<uint64_t>(MaxDstLen));
  Mix(Seed);
  return H;
}

const char *vega::precisionName(Precision P) {
  switch (P) {
  case Precision::FP32:
    return "fp32";
  case Precision::INT8:
    return "int8";
  }
  return "fp32";
}

std::optional<Precision> vega::parsePrecision(std::string_view Name) {
  if (Name == "fp32")
    return Precision::FP32;
  if (Name == "int8")
    return Precision::INT8;
  return std::nullopt;
}

CodeBE::CodeBE(Vocab Vocabulary, CodeBEConfig Config)
    : Vocabulary(std::move(Vocabulary)), Config(Config) {
  RNG Seeder(Config.Seed);
  const int D = Config.DModel;
  float S = 0.08f;
  auto P = [&](int R, int C) { return makeParam(R, C, S, Seeder.next()); };

  // Token embeddings start at zero: a token's embedding is its word-piece
  // composition until fine-tuning learns a residual. Unseen-at-training
  // tokens therefore embed purely through their pieces instead of through
  // untrained random noise — the property that lets value selection
  // generalize to a new target's identifiers.
  Etok = makeTensor(static_cast<int>(this->Vocabulary.size()), D,
                    /*RequiresGrad=*/true);
  Epiece = P(static_cast<int>(this->Vocabulary.pieceCount()) + 64, D);
  EposSrc = P(Config.MaxSrcLen, D);
  EposDst = P(Config.MaxDstLen + 1, D);

  auto MakeLinear = [&](int In, int Out) {
    LinearP L;
    L.W = P(In, Out);
    L.B = makeTensor(1, Out, true);
    return L;
  };
  auto MakeLN = [&](int Width) {
    LNP L;
    L.G = makeTensor(1, Width, true);
    for (float &V : L.G->Data)
      V = 1.0f;
    L.B = makeTensor(1, Width, true);
    return L;
  };
  auto MakeMHA = [&] {
    MHAP M;
    M.Q = MakeLinear(D, D);
    M.K = MakeLinear(D, D);
    M.V = MakeLinear(D, D);
    M.O = MakeLinear(D, D);
    return M;
  };
  for (int I = 0; I < Config.EncLayers; ++I) {
    EncLayerP L;
    L.Self = MakeMHA();
    L.N1 = MakeLN(D);
    L.F1 = MakeLinear(D, Config.FFDim);
    L.F2 = MakeLinear(Config.FFDim, D);
    L.N2 = MakeLN(D);
    Enc.push_back(std::move(L));
  }
  for (int I = 0; I < Config.DecLayers; ++I) {
    DecLayerP L;
    L.Self = MakeMHA();
    L.N1 = MakeLN(D);
    L.Cross = MakeMHA();
    L.N2 = MakeLN(D);
    L.F1 = MakeLinear(D, Config.FFDim);
    L.F2 = MakeLinear(Config.FFDim, D);
    L.N3 = MakeLN(D);
    Dec.push_back(std::move(L));
  }
  CopyProj = MakeLinear(D, D);
  CopyGate = makeTensor(1, 1, true);
  CopyGate->Data[0] = 3.0f;
  SrcBias = makeTensor(1, 1, true);
  SrcBias->Data[0] = 1.0f;
}

std::vector<TensorPtr> CodeBE::parameters() const {
  std::vector<TensorPtr> Params = {Etok,       Epiece,     EposSrc, EposDst,
                                   CopyProj.W, CopyProj.B, CopyGate, SrcBias};
  auto AddMHA = [&](const MHAP &M) {
    for (const LinearP *L : {&M.Q, &M.K, &M.V, &M.O}) {
      Params.push_back(L->W);
      Params.push_back(L->B);
    }
  };
  for (const EncLayerP &L : Enc) {
    AddMHA(L.Self);
    Params.push_back(L.N1.G);
    Params.push_back(L.N1.B);
    Params.push_back(L.F1.W);
    Params.push_back(L.F1.B);
    Params.push_back(L.F2.W);
    Params.push_back(L.F2.B);
    Params.push_back(L.N2.G);
    Params.push_back(L.N2.B);
  }
  for (const DecLayerP &L : Dec) {
    AddMHA(L.Self);
    Params.push_back(L.N1.G);
    Params.push_back(L.N1.B);
    AddMHA(L.Cross);
    Params.push_back(L.N2.G);
    Params.push_back(L.N2.B);
    Params.push_back(L.F1.W);
    Params.push_back(L.F1.B);
    Params.push_back(L.F2.W);
    Params.push_back(L.F2.B);
    Params.push_back(L.N3.G);
    Params.push_back(L.N3.B);
  }
  return Params;
}

TensorPtr CodeBE::linear(const TensorPtr &X, const LinearP &P) {
  return addRow(matmul(X, P.W), P.B);
}

std::unique_ptr<Tensor> CodeBE::causalMask(int Len) const {
  auto Mask = std::make_unique<Tensor>(Len, Len, false);
  for (int I = 0; I < Len; ++I)
    for (int J = I + 1; J < Len; ++J)
      Mask->at(I, J) = -1e9f;
  return Mask;
}

TensorPtr CodeBE::attention(const TensorPtr &XQ, const TensorPtr &XKV,
                            const MHAP &P, const Tensor *Mask) {
  const int D = Config.DModel;
  const int H = Config.Heads;
  const int Dk = D / H;
  TensorPtr Q = linear(XQ, P.Q);
  TensorPtr K = linear(XKV, P.K);
  TensorPtr V = linear(XKV, P.V);
  std::vector<TensorPtr> Heads;
  float Scale = 1.0f / std::sqrt(static_cast<float>(Dk));
  for (int HIdx = 0; HIdx < H; ++HIdx) {
    TensorPtr Qh = sliceCols(Q, HIdx * Dk, Dk);
    TensorPtr Kh = sliceCols(K, HIdx * Dk, Dk);
    TensorPtr Vh = sliceCols(V, HIdx * Dk, Dk);
    TensorPtr Scores = scale(matmulNT(Qh, Kh), Scale);
    TensorPtr A = softmaxRows(Scores, Mask);
    Heads.push_back(matmul(A, Vh));
  }
  return linear(concatCols(Heads), P.O);
}

TensorPtr CodeBE::encLayer(const TensorPtr &X, EncLayerP &L) {
  TensorPtr A = attention(X, X, L.Self, nullptr);
  TensorPtr Y = layerNorm(add(X, A), L.N1.G, L.N1.B);
  TensorPtr F = linear(relu(linear(Y, L.F1)), L.F2);
  return layerNorm(add(Y, F), L.N2.G, L.N2.B);
}

TensorPtr CodeBE::decLayer(const TensorPtr &X, const TensorPtr &Memory,
                           DecLayerP &L, const Tensor *CausalMask) {
  TensorPtr A = attention(X, X, L.Self, CausalMask);
  TensorPtr Y = layerNorm(add(X, A), L.N1.G, L.N1.B);
  TensorPtr C = attention(Y, Memory, L.Cross, nullptr);
  TensorPtr Z = layerNorm(add(Y, C), L.N2.G, L.N2.B);
  TensorPtr F = linear(relu(linear(Z, L.F1)), L.F2);
  return layerNorm(add(Z, F), L.N3.G, L.N3.B);
}

TensorPtr CodeBE::embed(const std::vector<int> &Ids, const TensorPtr &Pos) {
  std::vector<std::vector<int>> Lists;
  Lists.reserve(Ids.size());
  for (int Id : Ids)
    Lists.push_back(Vocabulary.pieceLists()[static_cast<size_t>(Id)]);
  TensorPtr Tok = add(gatherRows(Etok, Ids), sparseMix(Epiece, Lists));
  std::vector<int> Positions(Ids.size());
  for (size_t I = 0; I < Ids.size(); ++I)
    Positions[I] = static_cast<int>(I) < Pos->Rows ? static_cast<int>(I)
                                                   : Pos->Rows - 1;
  return add(Tok, gatherRows(Pos, Positions));
}

TensorPtr CodeBE::runEncoder(const std::vector<int> &Src) {
  TensorPtr X = embed(Src, EposSrc);
  for (EncLayerP &L : Enc)
    X = encLayer(X, L);
  return X;
}

TensorPtr CodeBE::runDecoder(const TensorPtr &Memory,
                             const std::vector<int> &DstIn) {
  TensorPtr X = embed(DstIn, EposDst);
  std::unique_ptr<Tensor> Mask = causalMask(static_cast<int>(DstIn.size()));
  for (DecLayerP &L : Dec)
    X = decLayer(X, Memory, L, Mask.get());
  return X;
}

TensorPtr CodeBE::combinedEmbeddings() {
  return add(Etok, sparseMix(Epiece, Vocabulary.pieceLists()));
}

void CodeBE::refreshCombCache() {
  std::lock_guard<std::mutex> Lock(CombMu);
  if (!CombDirty.load(std::memory_order_acquire))
    return; // another thread already rebuilt it
  TensorPtr Comb = combinedEmbeddings();
  TensorPtr Fresh = makeTensor(Comb->Rows, Comb->Cols, false);
  Fresh->Data = Comb->Data;
  CombCache = std::move(Fresh);
  CombDirty.store(false, std::memory_order_release);
}

void CodeBE::refreshQCombCache() {
  std::lock_guard<std::mutex> Lock(CombMu);
  if (!QCombDirty.load(std::memory_order_acquire))
    return; // another thread already rebuilt it
  // Quantize from freshly built fp32 combined embeddings (the same values
  // refreshCombCache snapshots), so the int8 route never depends on the
  // fp32 cache having been refreshed first.
  TensorPtr Comb = combinedEmbeddings();
  QCombData.assign(Comb->Data.size(), 0);
  QCombScale.assign(static_cast<size_t>(Comb->Rows), 0.0f);
  detail::quantizeRowsQ8(Comb->Data.data(), Comb->Rows, Comb->Cols,
                         QCombData.data(), QCombScale.data());
  QCombDirty.store(false, std::memory_order_release);
}

void CodeBE::setPrecision(Precision P) {
  if (Prec == P)
    return;
  Prec = P;
  QCombDirty.store(true, std::memory_order_release);
}

void CodeBE::prepareGenerate() {
  if (CombDirty.load(std::memory_order_acquire))
    refreshCombCache();
  if (Prec == Precision::INT8 && QCombDirty.load(std::memory_order_acquire))
    refreshQCombCache();
}

TensorPtr CodeBE::presenceFor(int Rows, const std::vector<int> &SrcIds) {
  // Source-presence bias: a learned uniform boost for every distinct token
  // that occurs in the input (pointer-network prior).
  std::vector<int> UniqueSrc;
  {
    std::vector<uint8_t> Seen(Vocabulary.size(), 0);
    for (int Id : SrcIds)
      if (!Seen[static_cast<size_t>(Id)]) {
        Seen[static_cast<size_t>(Id)] = 1;
        UniqueSrc.push_back(Id);
      }
  }
  TensorPtr Ones = makeTensor(Rows, static_cast<int>(UniqueSrc.size()),
                              /*RequiresGrad=*/false);
  for (float &V : Ones->Data)
    V = 1.0f;
  return copyScatter(Ones, UniqueSrc, static_cast<int>(Vocabulary.size()));
}

TensorPtr CodeBE::logitsFor(const TensorPtr &DecOut, const TensorPtr &Memory,
                            const std::vector<int> &SrcIds, bool UseCombCache,
                            const TensorPtr &CachedPresence,
                            const TensorPtr &CombOverride) {
  TensorPtr Base;
  const bool UseQ8 = Prec == Precision::INT8 && !CombOverride &&
                     NoGradGuard::active();
  if (UseQ8) {
    // Quantized route: the vocabulary-wide projection — the dominant GEMM
    // of every decode step — runs as int8·int8→int32 against the cached
    // quantized embedding matrix. Integer accumulation is exact, so this
    // is bit-deterministic at any thread count; it is NOT bit-equal to
    // the fp32 route (DESIGN.md §14). The copy head and presence tail
    // below stay fp32.
    if (QCombDirty.load(std::memory_order_acquire))
      refreshQCombCache();
    const int M = DecOut->Rows, K = DecOut->Cols;
    const int V = static_cast<int>(QCombScale.size());
    std::vector<int8_t> QA(static_cast<size_t>(M) * K);
    std::vector<float> SA(static_cast<size_t>(M));
    detail::quantizeRowsQ8(DecOut->Data.data(), M, K, QA.data(), SA.data());
    Base = makeTensor(M, V);
    detail::gemmNTQ8(QA.data(), SA.data(), QCombData.data(),
                     QCombScale.data(), Base->Data.data(), M, K, V);
  } else {
    TensorPtr Comb;
    if (CombOverride) {
      // Training batches share one combined-embeddings node across all
      // example tapes (the Trainer builds it once per batch).
      Comb = CombOverride;
    } else if (UseCombCache) {
      if (CombDirty.load(std::memory_order_acquire))
        refreshCombCache();
      Comb = CombCache;
    } else {
      Comb = combinedEmbeddings();
    }
    Base = matmulNT(DecOut, Comb);
  }
  // Pointer/copy head: attend the encoder memory and scatter the attention
  // mass onto the source token ids.
  float Scale = 1.0f / std::sqrt(static_cast<float>(Config.DModel));
  TensorPtr CScores = scale(matmulNT(linear(DecOut, CopyProj), Memory), Scale);
  TensorPtr A = softmaxRows(CScores);
  TensorPtr Copy = copyScatter(A, SrcIds, static_cast<int>(Vocabulary.size()));
  // The presence tensor is a pure function of (Rows, SrcIds); incremental
  // decoding hands in the one-row tensor it computed before the loop.
  TensorPtr Presence =
      CachedPresence && CachedPresence->Rows == DecOut->Rows
          ? CachedPresence
          : presenceFor(DecOut->Rows, SrcIds);
  if (NoGradGuard::active()) {
    // Inference fast path: the three vocabulary-wide tails fuse into one
    // in-place sweep over Base (fresh from matmulNT, so mutation is safe
    // with no tape). Each element performs the identical float operations
    // in the identical order as the add/scaleByScalar chain below, so the
    // logits are bit-for-bit the same.
    float CG = CopyGate->Data[0], SB = SrcBias->Data[0];
    for (size_t I = 0; I < Base->Data.size(); ++I)
      Base->Data[I] =
          (Base->Data[I] + Copy->Data[I] * CG) + Presence->Data[I] * SB;
    return Base;
  }
  return add(add(Base, scaleByScalar(Copy, CopyGate)),
             scaleByScalar(Presence, SrcBias));
}

TensorPtr CodeBE::trainLoss(const TrainPair &Pair, const TensorPtr &Comb) {
  std::vector<int> Src = Pair.Src;
  if (static_cast<int>(Src.size()) > Config.MaxSrcLen)
    Src.resize(static_cast<size_t>(Config.MaxSrcLen));
  std::vector<int> Dst = Pair.Dst;
  if (static_cast<int>(Dst.size()) > Config.MaxDstLen)
    Dst.resize(static_cast<size_t>(Config.MaxDstLen));
  if (Src.empty() || Dst.empty())
    return nullptr;

  std::vector<int> DstIn;
  DstIn.push_back(Vocabulary.e2dId());
  DstIn.insert(DstIn.end(), Dst.begin(), Dst.end() - 1);

  TensorPtr Memory = runEncoder(Src);
  TensorPtr DecOut = runDecoder(Memory, DstIn);
  TensorPtr Logits = logitsFor(DecOut, Memory, Src, /*UseCombCache=*/false,
                               /*CachedPresence=*/nullptr,
                               /*CombOverride=*/Comb);
  return crossEntropy(Logits, Dst);
}

void CodeBE::train(const std::vector<TrainPair> &Data,
                   const std::function<void(int, double)> &OnEpoch) {
  model::TrainOptions Opts = model::TrainOptions::fromConfig(Config);
  if (OnEpoch)
    Opts.OnEpoch = [&OnEpoch](const model::EpochStats &Stats) {
      OnEpoch(Stats.Epoch, Stats.MeanLoss);
    };
  model::Trainer Engine(*this, std::move(Opts));
  StatusOr<model::TrainResult> Result = Engine.run(Data);
  assert(Result.isOk() && "config-derived TrainOptions must validate");
  (void)Result;
}

/// An immutable, refcount-shared run of decoded self-attention K/V rows.
/// Prefix nodes form a parent chain from the most recent run back to the
/// root; assembled root-first they reproduce the chronological row order of
/// a single flat cache. Nodes are only ever created by KVCacheState::seal()
/// and never mutated afterwards, so any number of forked decodes (beam
/// hypotheses, group members — possibly on different threads) can read a
/// shared prefix concurrently while extending their own private tails.
struct CodeBE::KVPrefix {
  std::shared_ptr<const KVPrefix> Parent;
  std::vector<std::vector<float>> K, V; ///< [layer], Rows×DModel
  int Rows = 0;                         ///< rows in this node alone
  int TotalRows = 0;                    ///< rows including the parent chain
};

/// Incremental decode scratch. SelfK/SelfV hold the per-layer K/V rows this
/// decode appended past the shared Prefix (row-major, tail-rows×DModel);
/// CrossK/CrossV hold the cross-attention projections of the encoder
/// memory, computed once per generate() and pre-sliced per head (read-only,
/// so forks share them by pointer). Copying a sealed state is the O(1)
/// copy-on-write fork: the prefix chain and cross projections are shared,
/// the tail starts empty.
struct CodeBE::KVCacheState {
  TensorPtr Memory;
  std::vector<std::vector<TensorPtr>> CrossK, CrossV; ///< [layer][head]
  std::shared_ptr<const KVPrefix> Prefix;             ///< sealed shared rows
  std::vector<std::vector<float>> SelfK, SelfV;       ///< [layer] owned tail
  int Len = 0; ///< total rows = prefix rows + tail rows

  int prefixRows() const { return Prefix ? Prefix->TotalRows : 0; }

  /// Freezes the owned tail into a new immutable prefix node (no-op on an
  /// empty tail). Must run before a state is copied as a fork — afterwards
  /// the copy and the original each extend a fresh private tail.
  void seal() {
    const int Tail = Len - prefixRows();
    if (Tail == 0)
      return;
    auto Node = std::make_shared<KVPrefix>();
    Node->Parent = std::move(Prefix);
    Node->K = std::move(SelfK);
    Node->V = std::move(SelfV);
    Node->Rows = Tail;
    Node->TotalRows = (Node->Parent ? Node->Parent->TotalRows : 0) + Tail;
    const size_t Layers = Node->K.size();
    SelfK.assign(Layers, {});
    SelfV.assign(Layers, {});
    Prefix = std::move(Node);
  }
};

/// Everything one in-flight decode owns: the truncated input, borrowed
/// constraint pointers, the KV scratch, and the partial result. Step/Done
/// carry the decode position across decodeStepMany() calls, so a stream can
/// be stepped in any interleaving with any other streams.
struct CodeBE::DecodeStream::Impl {
  std::vector<int> Input; ///< Src truncated to MaxSrcLen
  const std::vector<uint8_t> *Allowed = nullptr; ///< borrowed
  const DecodePlan *Plan = nullptr;              ///< borrowed
  bool WithProbs = false;
  KVCacheState St;
  TensorPtr PresenceRow;
  Decoded Result;
  int PrevTok = 0;
  int Step = 0;
  bool Done = false;
};

CodeBE::DecodeStream::DecodeStream() = default;
CodeBE::DecodeStream::DecodeStream(DecodeStream &&Other) noexcept = default;
CodeBE::DecodeStream &
CodeBE::DecodeStream::operator=(DecodeStream &&Other) noexcept = default;
CodeBE::DecodeStream::~DecodeStream() = default;

bool CodeBE::DecodeStream::done() const { return !I || I->Done; }

const CodeBE::Decoded &CodeBE::DecodeStream::partial() const {
  assert(I && "partial() on a moved-from stream");
  return I->Result;
}

TensorPtr CodeBE::decodeStep(KVCacheState &St, int TokenId) {
  const int D = Config.DModel, H = Config.Heads, Dk = D / H;
  const float AttnScale = 1.0f / std::sqrt(static_cast<float>(Dk));
  // Single-row embedding — embed() with position index St.Len.
  std::vector<int> Ids = {TokenId};
  std::vector<std::vector<int>> Lists = {
      Vocabulary.pieceLists()[static_cast<size_t>(TokenId)]};
  TensorPtr Tok = add(gatherRows(Etok, Ids), sparseMix(Epiece, Lists));
  int Pos = St.Len < EposDst->Rows ? St.Len : EposDst->Rows - 1;
  TensorPtr X = add(Tok, gatherRows(EposDst, {Pos}));

  // Shared-prefix chain, root-first (chronological row order). Computed
  // once per step; the same chain serves every layer.
  std::vector<const KVPrefix *> Chain;
  for (const KVPrefix *N = St.Prefix.get(); N; N = N->Parent.get())
    Chain.push_back(N);
  std::reverse(Chain.begin(), Chain.end());

  const int Len = St.Len + 1;
  for (size_t LI = 0; LI < Dec.size(); ++LI) {
    DecLayerP &L = Dec[LI];
    // Self-attention over the cached prefix plus this row. Restricting the
    // keys to positions 0..Len-1 is bit-identical to the full causal-masked
    // pass: masked scores sit at ~-1e9, so their exp() underflows to
    // exactly 0.0f and they contribute nothing to max, sum, or the
    // attention-weighted value rows.
    TensorPtr Qr = linear(X, L.Self.Q);
    TensorPtr Kr = linear(X, L.Self.K);
    TensorPtr Vr = linear(X, L.Self.V);
    std::vector<float> &KCache = St.SelfK[LI];
    std::vector<float> &VCache = St.SelfV[LI];
    KCache.insert(KCache.end(), Kr->Data.begin(), Kr->Data.end());
    VCache.insert(VCache.end(), Vr->Data.begin(), Vr->Data.end());
    // Assemble the full Len×D key/value matrices: shared prefix nodes
    // root-first, then the owned tail — byte-for-byte the rows a single
    // flat cache would hold.
    TensorPtr KAll = makeTensor(Len, D);
    TensorPtr VAll = makeTensor(Len, D);
    {
      float *KD = KAll->Data.data();
      float *VD = VAll->Data.data();
      size_t Off = 0;
      for (const KVPrefix *Node : Chain) {
        const std::vector<float> &NK = Node->K[LI];
        const std::vector<float> &NV = Node->V[LI];
        std::copy(NK.begin(), NK.end(), KD + Off);
        std::copy(NV.begin(), NV.end(), VD + Off);
        Off += NK.size();
      }
      std::copy(KCache.begin(), KCache.end(), KD + Off);
      std::copy(VCache.begin(), VCache.end(), VD + Off);
    }
    std::vector<TensorPtr> Heads;
    for (int HI = 0; HI < H; ++HI) {
      TensorPtr Qh = sliceCols(Qr, HI * Dk, Dk);
      TensorPtr Kh = sliceCols(KAll, HI * Dk, Dk);
      TensorPtr Vh = sliceCols(VAll, HI * Dk, Dk);
      TensorPtr Scores = scale(matmulNT(Qh, Kh), AttnScale);
      TensorPtr A = softmaxRows(Scores);
      Heads.push_back(matmul(A, Vh));
    }
    TensorPtr AO = linear(concatCols(Heads), L.Self.O);
    TensorPtr Y = layerNorm(add(X, AO), L.N1.G, L.N1.B);
    // Cross-attention against the precomputed memory projections.
    TensorPtr Qc = linear(Y, L.Cross.Q);
    std::vector<TensorPtr> CHeads;
    for (int HI = 0; HI < H; ++HI) {
      TensorPtr Qh = sliceCols(Qc, HI * Dk, Dk);
      TensorPtr Scores = scale(matmulNT(Qh, St.CrossK[LI][HI]), AttnScale);
      TensorPtr A = softmaxRows(Scores);
      CHeads.push_back(matmul(A, St.CrossV[LI][HI]));
    }
    TensorPtr C = linear(concatCols(CHeads), L.Cross.O);
    TensorPtr Z = layerNorm(add(Y, C), L.N2.G, L.N2.B);
    TensorPtr F = linear(relu(linear(Z, L.F1)), L.F2);
    X = layerNorm(add(Z, F), L.N3.G, L.N3.B);
  }
  ++St.Len;
  return X;
}

int CodeBE::chooseGreedy(const TensorPtr &Logits,
                         const std::vector<uint8_t> *Allowed,
                         const DecodePlan *Plan, int Step, bool WithProbs,
                         double &Prob) const {
  // Greedy choice over the last row, restricted to the admissible set.
  const int Last = Logits->Rows - 1;
  const std::vector<int> *StepSet =
      Plan && !Plan->Steps[static_cast<size_t>(Step)].empty()
          ? &Plan->Steps[static_cast<size_t>(Step)]
          : nullptr;
  int Best = -1;
  float BestV = -1e30f;
  if (StepSet) {
    const std::map<int, float> *Bias =
        Plan->Bias.size() > static_cast<size_t>(Step)
            ? &Plan->Bias[static_cast<size_t>(Step)]
            : nullptr;
    for (int J : *StepSet) {
      if (J < 0 || J >= Logits->Cols)
        continue;
      float Score = Logits->at(Last, J);
      if (Bias) {
        auto It = Bias->find(J);
        if (It != Bias->end())
          Score += It->second;
      }
      if (Score > BestV) {
        BestV = Score;
        Best = J;
      }
    }
  } else {
    auto IsAllowed = [&](int Id) {
      if (!Allowed)
        return true;
      if (Id == Vocabulary.eosId() || Vocabulary.isCsToken(Id))
        return true;
      return static_cast<size_t>(Id) < Allowed->size() &&
             (*Allowed)[static_cast<size_t>(Id)] != 0;
    };
    for (int J = 0; J < Logits->Cols; ++J) {
      if (!IsAllowed(J))
        continue;
      if (Logits->at(Last, J) > BestV) {
        BestV = Logits->at(Last, J);
        Best = J;
      }
    }
  }
  if (Best < 0)
    return -1;
  // Softmax probability of the chosen token over the full vocabulary, in
  // a single fused pass: an online softmax keeps a running maximum and a
  // sum rescaled whenever the maximum moves, replacing the separate
  // max-then-sum sweeps of the row. Seeding the maximum at BestV keeps
  // the anchor at the global maximum even when a plan bias lifted the
  // winner above every raw logit. Callers that ignore probabilities
  // skip the sweep entirely (a vocabulary of exp() calls per step).
  Prob = 1.0;
  if (WithProbs) {
    const float *Row = &Logits->Data[static_cast<size_t>(Last) * Logits->Cols];
    float MaxAll = BestV;
    double Sum = 0.0;
    for (int J = 0; J < Logits->Cols; ++J) {
      float V = Row[J];
      if (V > MaxAll) {
        Sum = Sum * std::exp(static_cast<double>(MaxAll - V)) + 1.0;
        MaxAll = V;
      } else {
        Sum += std::exp(static_cast<double>(V - MaxAll));
      }
    }
    Prob = std::exp(static_cast<double>(BestV - MaxAll)) / Sum;
  }
  return Best;
}

bool CodeBE::decodeGreedyKV(KVCacheState &St, const std::vector<int> &Input,
                            const std::vector<uint8_t> *Allowed,
                            const DecodePlan *Plan, bool WithProbs, int Begin,
                            int End, const TensorPtr &PresenceRow,
                            int &PrevTok, Decoded &Result) {
  for (int Step = Begin; Step < End; ++Step) {
    // Positions past the plan end the statement.
    if (Plan && static_cast<size_t>(Step) >= Plan->Steps.size())
      return true;
    const std::vector<int> *StepSet =
        Plan && !Plan->Steps[static_cast<size_t>(Step)].empty()
            ? &Plan->Steps[static_cast<size_t>(Step)]
            : nullptr;
    // Pinned-step fast path: when the plan admits exactly one token and the
    // caller skipped probabilities, the argmax over the singleton is forced
    // and the vocabulary-wide logit projection — the dominant GEMM of the
    // step — can be skipped outright. decodeStep still runs, so the KV
    // cache holds exactly the rows the logits path would have produced, and
    // the out-of-range and [EOS] break conditions mirror the argmax path:
    // output is byte-identical with the fast path on or off.
    if (PrefixShare && !WithProbs && StepSet && StepSet->size() == 1) {
      const int J = (*StepSet)[0];
      if (J < 0 || J >= static_cast<int>(Vocabulary.size()))
        return true; // the argmax would find nothing admissible
      decodeStep(St, PrevTok);
      if (J == Vocabulary.eosId())
        return true;
      Result.Tokens.push_back(J);
      PrevTok = J;
      continue;
    }
    TensorPtr DecRow = decodeStep(St, PrevTok);
    TensorPtr Logits =
        logitsFor(DecRow, St.Memory, Input, /*UseCombCache=*/true,
                  PresenceRow);
    double Prob = 1.0;
    int Best = chooseGreedy(Logits, Allowed, Plan, Step, WithProbs, Prob);
    if (Best < 0 || Best == Vocabulary.eosId())
      return true;
    Result.Tokens.push_back(Best);
    if (WithProbs)
      Result.Probs.push_back(Prob);
    PrevTok = Best;
  }
  return false;
}

CodeBE::DecodeStream CodeBE::beginDecode(const std::vector<int> &Src,
                                         const std::vector<uint8_t> *Allowed,
                                         const DecodePlan *Plan,
                                         bool WithProbs) {
  // Inference never backpropagates: build no tape, so every intermediate
  // tensor dies at the end of its statement instead of living until the
  // decode finishes.
  NoGradGuard Guard;
  DecodeStream S;
  S.I = std::make_unique<DecodeStream::Impl>();
  DecodeStream::Impl &D = *S.I;
  D.Input = Src;
  if (static_cast<int>(D.Input.size()) > Config.MaxSrcLen)
    D.Input.resize(static_cast<size_t>(Config.MaxSrcLen));
  D.Allowed = Allowed;
  D.Plan = Plan;
  D.WithProbs = WithProbs;
  {
    obs::Span EncSpan("model.encode", "model");
    D.St.Memory = runEncoder(D.Input);
  }
  const int Dk = Config.DModel / Config.Heads;
  D.St.CrossK.resize(Dec.size());
  D.St.CrossV.resize(Dec.size());
  D.St.SelfK.resize(Dec.size());
  D.St.SelfV.resize(Dec.size());
  for (size_t LI = 0; LI < Dec.size(); ++LI) {
    TensorPtr K = linear(D.St.Memory, Dec[LI].Cross.K);
    TensorPtr V = linear(D.St.Memory, Dec[LI].Cross.V);
    for (int HI = 0; HI < Config.Heads; ++HI) {
      D.St.CrossK[LI].push_back(sliceCols(K, HI * Dk, Dk));
      D.St.CrossV[LI].push_back(sliceCols(V, HI * Dk, Dk));
    }
  }
  // The one-row presence bias is constant across all incremental steps.
  D.PresenceRow = presenceFor(1, D.Input);
  D.PrevTok = Vocabulary.e2dId();
  return S;
}

CodeBE::DecodeStream
CodeBE::forkDecode(const KVCacheState &Proto, const Decoded &PrefixOut,
                   int PrevTok, int Step, const std::vector<int> &Input,
                   const std::vector<uint8_t> *Allowed, const DecodePlan *Plan,
                   const TensorPtr &PresenceRow) {
  DecodeStream S;
  S.I = std::make_unique<DecodeStream::Impl>();
  DecodeStream::Impl &D = *S.I;
  D.Input = Input;
  D.Allowed = Allowed;
  D.Plan = Plan;
  D.St = Proto; // CoW fork: shared sealed prefix, private tail
  D.PresenceRow = PresenceRow;
  D.Result = PrefixOut;
  D.PrevTok = PrevTok;
  D.Step = Step;
  return S;
}

size_t CodeBE::decodeStepMany(const std::vector<DecodeStream *> &Streams) {
  NoGradGuard Guard;
  size_t Live = 0;
  for (DecodeStream *S : Streams) {
    assert(S && S->I && "stepping a consumed or moved-from stream");
    DecodeStream::Impl &D = *S->I;
    if (D.Done)
      continue;
    if (D.Step >= Config.MaxDstLen) {
      D.Done = true;
      continue;
    }
    // One position of the KV-cached greedy loop — exactly the iteration
    // body a whole-range decodeGreedyKV call would run at this step, with
    // the state (cache, previous token, partial result) carried in the
    // stream. A stream therefore produces the same bytes whether it is
    // stepped alone or interleaved with any co-batch.
    const bool Ended =
        decodeGreedyKV(D.St, D.Input, D.Allowed, D.Plan, D.WithProbs, D.Step,
                       D.Step + 1, D.PresenceRow, D.PrevTok, D.Result);
    ++D.Step;
    if (Ended || D.Step >= Config.MaxDstLen)
      D.Done = true;
    else
      ++Live;
  }
  return Live;
}

CodeBE::Decoded CodeBE::finishDecode(DecodeStream S) {
  assert(S.I && "finishing a consumed or moved-from stream");
  std::vector<DecodeStream *> Solo = {&S};
  while (decodeStepMany(Solo) > 0) {
  }
  return std::move(S.I->Result);
}

CodeBE::Decoded CodeBE::generate(const std::vector<int> &Src,
                                 const std::vector<uint8_t> *Allowed,
                                 const DecodePlan *Plan, bool WithProbs) {
  NoGradGuard Guard;
  Decoded Result;
  if (Mode == DecodeMode::KVCache) {
    // The solo decode is one stream run to completion — the same step-level
    // path generateGroup() and the serve scheduler co-step many streams
    // through, so solo and co-batched requests cannot diverge.
    DecodeStream S = beginDecode(Src, Allowed, Plan, WithProbs);
    obs::Span DecSpan("model.decode", "model");
    Result = finishDecode(std::move(S));
  } else {
    std::vector<int> Input = Src;
    if (static_cast<int>(Input.size()) > Config.MaxSrcLen)
      Input.resize(static_cast<size_t>(Config.MaxSrcLen));
    TensorPtr Memory;
    {
      obs::Span EncSpan("model.encode", "model");
      Memory = runEncoder(Input);
    }
    obs::Span DecSpan("model.decode", "model");
    std::vector<int> DstIn = {Vocabulary.e2dId()};
    for (int Step = 0; Step < Config.MaxDstLen; ++Step) {
      // Positions past the plan end the statement.
      if (Plan && static_cast<size_t>(Step) >= Plan->Steps.size())
        break;
      TensorPtr DecOut = runDecoder(Memory, DstIn);
      TensorPtr Logits =
          logitsFor(DecOut, Memory, Input, /*UseCombCache=*/true);
      double Prob = 1.0;
      int Best = chooseGreedy(Logits, Allowed, Plan, Step, WithProbs, Prob);
      if (Best < 0 || Best == Vocabulary.eosId())
        break;
      Result.Tokens.push_back(Best);
      if (WithProbs)
        Result.Probs.push_back(Prob);
      DstIn.push_back(Best);
    }
  }
  auto &Metrics = obs::MetricsRegistry::instance();
  Metrics.addCounter("model.generate_calls");
  Metrics.observe("model.tokens_decoded",
                  static_cast<double>(Result.Tokens.size()), 0.0,
                  static_cast<double>(Config.MaxDstLen + 1), 16);
  return Result;
}

std::vector<CodeBE::Decoded>
CodeBE::generateGroup(const std::vector<GroupRequest> &Reqs, bool WithProbs) {
  std::vector<Decoded> Out(Reqs.size());
  if (Reqs.empty())
    return Out;

  // Sharing preconditions: KV decode without probabilities, the knob on,
  // and a group that actually coincides — identical encoder input and
  // identical admissible sets. Anything else falls back to per-request
  // generate(), which is the semantic baseline sharing must reproduce.
  bool Share = PrefixShare && Mode == DecodeMode::KVCache && !WithProbs &&
               Reqs.size() > 1;
  for (size_t I = 0; Share && I < Reqs.size(); ++I)
    if (!Reqs[I].Src)
      Share = false;
  for (size_t I = 1; Share && I < Reqs.size(); ++I) {
    if (*Reqs[I].Src != *Reqs[0].Src)
      Share = false;
    const std::vector<uint8_t> *A = Reqs[I].Allowed, *B = Reqs[0].Allowed;
    if ((A == nullptr) != (B == nullptr) || (A && *A != *B))
      Share = false;
  }
  if (!Share) {
    for (size_t I = 0; I < Reqs.size(); ++I)
      Out[I] = generate(Reqs[I].Src ? *Reqs[I].Src : std::vector<int>{},
                        Reqs[I].Allowed, Reqs[I].Plan, WithProbs);
    return Out;
  }

  // Longest common plan prefix: steps AND biases must agree position by
  // position (a bias shifts the argmax, so it is part of step identity).
  // A missing Bias entry and an empty map are the same thing.
  size_t Shared = SIZE_MAX;
  for (const GroupRequest &R : Reqs)
    Shared = std::min(Shared, R.Plan ? R.Plan->Steps.size() : 0);
  auto BiasAt = [](const DecodePlan *P, size_t Step) {
    static const std::map<int, float> Empty;
    return P->Bias.size() > Step ? &P->Bias[Step] : &Empty;
  };
  for (size_t S = 0; S < Shared; ++S)
    for (size_t I = 1; I < Reqs.size(); ++I)
      if (Reqs[I].Plan->Steps[S] != Reqs[0].Plan->Steps[S] ||
          *BiasAt(Reqs[I].Plan, S) != *BiasAt(Reqs[0].Plan, S)) {
        Shared = S;
        break;
      }

  NoGradGuard Guard;
  obs::Span GroupSpan("model.generate_group", "model");
  GroupSpan.arg("group", std::to_string(Reqs.size()));
  GroupSpan.arg("shared_steps", std::to_string(Shared));

  std::vector<int> Input = *Reqs[0].Src;
  if (static_cast<int>(Input.size()) > Config.MaxSrcLen)
    Input.resize(static_cast<size_t>(Config.MaxSrcLen));
  TensorPtr Memory;
  {
    obs::Span EncSpan("model.encode", "model");
    Memory = runEncoder(Input);
  }
  obs::Span DecSpan("model.decode", "model");

  // One decode scratch for the whole group: encoder memory and cross
  // projections are computed once and shared read-only by every fork.
  KVCacheState Proto;
  {
    const int Dk = Config.DModel / Config.Heads;
    Proto.Memory = Memory;
    Proto.CrossK.resize(Dec.size());
    Proto.CrossV.resize(Dec.size());
    Proto.SelfK.resize(Dec.size());
    Proto.SelfV.resize(Dec.size());
    for (size_t LI = 0; LI < Dec.size(); ++LI) {
      TensorPtr K = linear(Memory, Dec[LI].Cross.K);
      TensorPtr V = linear(Memory, Dec[LI].Cross.V);
      for (int HI = 0; HI < Config.Heads; ++HI) {
        Proto.CrossK[LI].push_back(sliceCols(K, HI * Dk, Dk));
        Proto.CrossV[LI].push_back(sliceCols(V, HI * Dk, Dk));
      }
    }
  }
  TensorPtr PresenceRow = presenceFor(1, Input);

  // Decode the common prefix once. Any request's plan stands in for the
  // group over [0, Shared) — the steps are identical by construction.
  Decoded PrefixOut;
  int PrevTok = Vocabulary.e2dId();
  bool Ended =
      Shared > 0 && decodeGreedyKV(Proto, Input, Reqs[0].Allowed, Reqs[0].Plan,
                                   /*WithProbs=*/false, 0,
                                   static_cast<int>(Shared), PresenceRow,
                                   PrevTok, PrefixOut);

  auto &Metrics = obs::MetricsRegistry::instance();
  Metrics.addCounter("gen.prefix.hits",
                     static_cast<uint64_t>(Reqs.size() - 1));
  for (size_t I = 1; I < Reqs.size(); ++I)
    Metrics.observe("gen.prefix_reuse_tokens",
                    static_cast<double>(Proto.Len)); // shape declared centrally

  if (Ended) {
    // The decode finished inside the shared prefix, so every member's own
    // decode would have produced exactly these tokens.
    for (size_t I = 0; I < Reqs.size(); ++I)
      Out[I] = PrefixOut;
  } else {
    Proto.seal();
    Metrics.addCounter("gen.prefix.forks", static_cast<uint64_t>(Reqs.size()));
    // Fork every member copy-on-write off the sealed prefix and advance the
    // forks in lockstep — one KV-cached pass per member per step, retiring
    // members at EOS. Members are independent streams, so co-stepping is
    // byte-identical to running each tail to completion on its own.
    std::vector<DecodeStream> Tails;
    Tails.reserve(Reqs.size());
    for (size_t I = 0; I < Reqs.size(); ++I)
      Tails.push_back(forkDecode(Proto, PrefixOut, PrevTok,
                                 static_cast<int>(Shared), Input,
                                 Reqs[I].Allowed, Reqs[I].Plan, PresenceRow));
    std::vector<DecodeStream *> CoBatch;
    CoBatch.reserve(Tails.size());
    for (DecodeStream &T : Tails)
      CoBatch.push_back(&T);
    while (decodeStepMany(CoBatch) > 0) {
    }
    for (size_t I = 0; I < Reqs.size(); ++I)
      Out[I] = finishDecode(std::move(Tails[I]));
  }
  // Per-member accounting matches what the unshared fallback would emit.
  Metrics.addCounter("model.generate_calls",
                     static_cast<uint64_t>(Reqs.size()));
  for (const Decoded &D : Out)
    Metrics.observe("model.tokens_decoded", static_cast<double>(D.Tokens.size()),
                    0.0, static_cast<double>(Config.MaxDstLen + 1), 16);
  return Out;
}

std::vector<CodeBE::BeamHypothesis>
CodeBE::decodeBeam(const std::vector<int> &Src, int Width,
                   const std::vector<uint8_t> *Allowed,
                   const DecodePlan *Plan) {
  NoGradGuard Guard;
  if (Width < 1)
    Width = 1;
  obs::Span BeamSpan("beam.decode", "model");
  BeamSpan.arg("width", std::to_string(Width));

  std::vector<int> Input = Src;
  if (static_cast<int>(Input.size()) > Config.MaxSrcLen)
    Input.resize(static_cast<size_t>(Config.MaxSrcLen));
  TensorPtr Memory;
  {
    obs::Span EncSpan("model.encode", "model");
    Memory = runEncoder(Input);
  }

  // The shared decode scratch template: cross projections computed once and
  // shared read-only by every hypothesis; self K/V rows are forked per
  // hypothesis when the beam branches.
  KVCacheState Proto;
  {
    const int Dk = Config.DModel / Config.Heads;
    Proto.Memory = Memory;
    Proto.CrossK.resize(Dec.size());
    Proto.CrossV.resize(Dec.size());
    Proto.SelfK.resize(Dec.size());
    Proto.SelfV.resize(Dec.size());
    for (size_t LI = 0; LI < Dec.size(); ++LI) {
      TensorPtr K = linear(Memory, Dec[LI].Cross.K);
      TensorPtr V = linear(Memory, Dec[LI].Cross.V);
      for (int HI = 0; HI < Config.Heads; ++HI) {
        Proto.CrossK[LI].push_back(sliceCols(K, HI * Dk, Dk));
        Proto.CrossV[LI].push_back(sliceCols(V, HI * Dk, Dk));
      }
    }
  }

  auto IsAllowed = [&](int Id) {
    if (!Allowed)
      return true;
    if (Id == Vocabulary.eosId() || Vocabulary.isCsToken(Id))
      return true;
    return static_cast<size_t>(Id) < Allowed->size() &&
           (*Allowed)[static_cast<size_t>(Id)] != 0;
  };

  struct LiveBeam {
    KVCacheState St;
    std::vector<int> Tokens;
    double Score = 0.0;
    int PrevTok = 0;
  };
  std::vector<LiveBeam> Live;
  Live.push_back({Proto, {}, 0.0, Vocabulary.e2dId()});
  std::vector<BeamHypothesis> Finished;
  auto Retire = [&](LiveBeam &B) {
    Finished.push_back({std::move(B.Tokens), B.Score});
  };

  TensorPtr PresenceRow = presenceFor(1, Input);
  for (int Step = 0; Step < Config.MaxDstLen && !Live.empty(); ++Step) {
    // Positions past the plan end every surviving statement, exactly like
    // the greedy loop.
    if (Plan && static_cast<size_t>(Step) >= Plan->Steps.size())
      break;
    const std::vector<int> *StepSet =
        Plan && !Plan->Steps[static_cast<size_t>(Step)].empty()
            ? &Plan->Steps[static_cast<size_t>(Step)]
            : nullptr;
    const std::map<int, float> *Bias =
        StepSet && Plan->Bias.size() > static_cast<size_t>(Step)
            ? &Plan->Bias[static_cast<size_t>(Step)]
            : nullptr;

    struct Expansion {
      size_t Parent;
      int Token;
      double Score;
    };
    std::vector<Expansion> Exps;
    for (size_t BI = 0; BI < Live.size(); ++BI) {
      LiveBeam &B = Live[BI];
      TensorPtr DecRow = decodeStep(B.St, B.PrevTok);
      TensorPtr Logits = logitsFor(DecRow, Memory, Input, /*UseCombCache=*/true,
                                   PresenceRow);
      int Last = Logits->Rows - 1;
      const float *Row = &Logits->Data[static_cast<size_t>(Last) * Logits->Cols];
      // Raw-row log-sum-exp: the same normalizer generate()'s confidence
      // pass divides by, so log P(token) = biasedLogit - LSE. A plan bias
      // can lift the winner above the raw maximum — that only shifts the
      // score, never breaks the ranking.
      float MaxRaw = -1e30f;
      for (int J = 0; J < Logits->Cols; ++J)
        if (Row[J] > MaxRaw)
          MaxRaw = Row[J];
      double Sum = 0.0;
      for (int J = 0; J < Logits->Cols; ++J)
        Sum += std::exp(static_cast<double>(Row[J] - MaxRaw));
      double LSE = static_cast<double>(MaxRaw) + std::log(Sum);
      if (StepSet) {
        for (int J : *StepSet) {
          if (J < 0 || J >= Logits->Cols)
            continue;
          float V = Row[J];
          if (Bias) {
            auto It = Bias->find(J);
            if (It != Bias->end())
              V += It->second;
          }
          Exps.push_back({BI, J, B.Score + static_cast<double>(V) - LSE});
        }
      } else {
        for (int J = 0; J < Logits->Cols; ++J)
          if (IsAllowed(J))
            Exps.push_back({BI, J, B.Score + static_cast<double>(Row[J]) - LSE});
      }
    }
    if (Exps.empty())
      break; // no admissible continuation: surviving beams finish as-is

    // Deterministic selection: stable sort keeps expansion order (parent
    // rank, then admissible-set order) on exact score ties — the same
    // first-wins rule as greedy argmax.
    std::stable_sort(Exps.begin(), Exps.end(),
                     [](const Expansion &A, const Expansion &B) {
                       return A.Score > B.Score;
                     });
    std::vector<LiveBeam> Next;
    for (const Expansion &E : Exps) {
      if (static_cast<int>(Next.size()) >= Width)
        break;
      if (E.Token == Vocabulary.eosId()) {
        // [EOS] retires the hypothesis; like greedy, the terminator itself
        // is not part of the statement.
        Finished.push_back({Live[E.Parent].Tokens, E.Score});
        continue;
      }
      LiveBeam NB;
      // O(1) copy-on-write fork: freeze the parent's decoded rows into the
      // shared prefix chain (idempotent when several children fork the same
      // parent) instead of deep-copying Len×D floats per hypothesis.
      Live[E.Parent].St.seal();
      NB.St = Live[E.Parent].St;
      NB.Tokens = Live[E.Parent].Tokens;
      NB.Tokens.push_back(E.Token);
      NB.Score = E.Score;
      NB.PrevTok = E.Token;
      Next.push_back(std::move(NB));
    }
    Live = std::move(Next);
  }
  for (LiveBeam &B : Live)
    Retire(B);

  std::stable_sort(Finished.begin(), Finished.end(),
                   [](const BeamHypothesis &A, const BeamHypothesis &B) {
                     return A.Score > B.Score;
                   });
  std::vector<BeamHypothesis> Result;
  std::set<std::vector<int>> Seen;
  for (BeamHypothesis &H : Finished) {
    if (static_cast<int>(Result.size()) >= Width)
      break;
    if (!Seen.insert(H.Tokens).second)
      continue;
    Result.push_back(std::move(H));
  }

  auto &Metrics = obs::MetricsRegistry::instance();
  Metrics.addCounter("beam.decode_calls");
  Metrics.observe("beam.candidates", static_cast<double>(Result.size()), 0.0,
                  static_cast<double>(Width + 1), 16);
  return Result;
}

double CodeBE::exactMatch(const std::vector<TrainPair> &Data) {
  if (Data.empty())
    return 1.0;
  size_t Matches = 0;
  for (const TrainPair &Pair : Data) {
    Decoded Out = generate(Pair.Src);
    std::vector<int> Expected = Pair.Dst;
    if (!Expected.empty() && Expected.back() == Vocabulary.eosId())
      Expected.pop_back();
    if (static_cast<int>(Expected.size()) > Config.MaxDstLen)
      Expected.resize(static_cast<size_t>(Config.MaxDstLen));
    if (Out.Tokens == Expected)
      ++Matches;
  }
  return static_cast<double>(Matches) / static_cast<double>(Data.size());
}

std::string CodeBE::saveWeights() const {
  std::string Blob;
  uint64_t Magic = Config.fingerprint();
  Blob.append(reinterpret_cast<const char *>(&Magic), sizeof(Magic));
  for (const TensorPtr &P : parameters()) {
    uint64_t N = P->Data.size();
    Blob.append(reinterpret_cast<const char *>(&N), sizeof(N));
    Blob.append(reinterpret_cast<const char *>(P->Data.data()),
                N * sizeof(float));
  }
  return Blob;
}

bool CodeBE::loadWeights(const std::string &Blob) {
  size_t Pos = 0;
  auto Read = [&](void *Dst, size_t N) {
    if (Pos + N > Blob.size())
      return false;
    std::memcpy(Dst, Blob.data() + Pos, N);
    Pos += N;
    return true;
  };
  uint64_t Magic = 0;
  if (!Read(&Magic, sizeof(Magic)) || Magic != Config.fingerprint())
    return false;
  for (const TensorPtr &P : parameters()) {
    uint64_t N = 0;
    if (!Read(&N, sizeof(N)) || N != P->Data.size())
      return false;
    if (!Read(P->Data.data(), N * sizeof(float)))
      return false;
  }
  CombDirty = true;
  QCombDirty = true;
  return Pos == Blob.size();
}
