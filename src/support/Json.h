//===- support/Json.h - JSON values, writer, parser --------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON document type with a strict recursive-descent parser and a
/// deterministic writer. This is the single serialization surface shared by
/// `vega-cli --json` and the `vega-serve` JSON-RPC daemon — one schema, two
/// consumers (obs/ keeps its own streaming writers for trace/metrics export;
/// those are write-only hot paths).
///
/// Objects preserve insertion order, so a document always serializes the
/// same way — responses are diffable byte-for-byte across runs.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SUPPORT_JSON_H
#define VEGA_SUPPORT_JSON_H

#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vega {

/// One JSON value (null / bool / number / string / array / object).
class Json {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Json() : K(Kind::Null) {}
  Json(bool V) : K(Kind::Bool), BoolV(V) {}
  Json(double V) : K(Kind::Number), NumV(V) {}
  Json(int V) : K(Kind::Number), NumV(V) {}
  Json(int64_t V) : K(Kind::Number), NumV(static_cast<double>(V)) {}
  Json(uint64_t V) : K(Kind::Number), NumV(static_cast<double>(V)) {}
  Json(std::string V) : K(Kind::String), StrV(std::move(V)) {}
  Json(const char *V) : K(Kind::String), StrV(V) {}

  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return BoolV; }
  double asNumber() const { return NumV; }
  const std::string &asString() const { return StrV; }

  /// Array append.
  void push(Json V) { Items.push_back(std::move(V)); }

  /// Object field set (appends; last write wins on lookup).
  void set(std::string Key, Json V) {
    Fields.emplace_back(std::move(Key), std::move(V));
  }

  /// Object field lookup; nullptr when absent or not an object.
  const Json *get(const std::string &Key) const;

  /// Convenience typed lookups for request handling.
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;
  double getNumber(const std::string &Key, double Default = 0.0) const;

  /// Array / object size.
  size_t size() const {
    return K == Kind::Array ? Items.size() : Fields.size();
  }
  const Json &at(size_t I) const { return Items[I]; }
  const std::vector<Json> &items() const { return Items; }
  const std::vector<std::pair<std::string, Json>> &fields() const {
    return Fields;
  }

  /// Serializes. Indent < 0 → compact single line (the NDJSON wire form);
  /// Indent >= 0 → pretty-printed with that many spaces per level.
  std::string dump(int Indent = -1) const;

  /// Strict parse of a complete document (trailing garbage is an error).
  static StatusOr<Json> parse(std::string_view Text);

  /// Escapes \p S as a JSON string literal including the quotes.
  static std::string quote(std::string_view S);

private:
  void dumpTo(std::string &Out, int Indent, int Depth) const;

  Kind K;
  bool BoolV = false;
  double NumV = 0.0;
  std::string StrV;
  std::vector<Json> Items;
  std::vector<std::pair<std::string, Json>> Fields;
};

} // namespace vega

#endif // VEGA_SUPPORT_JSON_H
