//===- examples/minicc_pipeline.cpp - the compiler substrate --------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Drives the mini compiler directly — no ML. Builds a benchmark's toy IR,
/// compiles it for a target at -O0 and -O3, prints the IR and cycle
/// accounting, and shows how backend hooks (hardware loops, SIMD width,
/// latencies) move the numbers. This is the substrate behind Fig. 10.
///
///   ./build/examples/minicc_pipeline [benchmark] [target]
///
//===----------------------------------------------------------------------===//

#include "minicc/Benchmarks.h"
#include "sim/Simulator.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace vega;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "matmult-int";
  std::string Target = argc > 2 ? argv[2] : "RI5CY";

  TargetDatabase DB = TargetDatabase::standard();
  const TargetTraits *Traits = DB.find(Target);
  if (!Traits) {
    std::fprintf(stderr, "error: unknown target '%s'\n", Target.c_str());
    return 1;
  }

  IRModule Module = buildBenchmark(Name);
  std::printf("== toy IR for %s ==\n%s\n", Name.c_str(),
              printModule(Module).c_str());

  BackendHooks Hooks = hooksFromTraits(*Traits);
  SimResult O0 = compileAndRun(Module, *Traits, Hooks, OptLevel::O0);
  SimResult O3 = compileAndRun(Module, *Traits, Hooks, OptLevel::O3);

  TextTable Table;
  Table.setHeader({"Metric", "-O0", "-O3"});
  Table.addRow({"cycles", std::to_string(O0.Cycles),
                std::to_string(O3.Cycles)});
  Table.addRow({"instructions executed", std::to_string(O0.Instructions),
                std::to_string(O3.Instructions)});
  Table.addRow({"stall cycles", std::to_string(O0.Stalls),
                std::to_string(O3.Stalls)});
  Table.addRow({"code bytes", std::to_string(O0.CodeBytes),
                std::to_string(O3.CodeBytes)});
  std::printf("== %s on %s ==\n%s", Name.c_str(), Target.c_str(),
              Table.render().c_str());
  std::printf("speedup -O3 over -O0: %.2fx\n\n",
              static_cast<double>(O0.Cycles) /
                  static_cast<double>(O3.Cycles));

  // Hook sensitivity: what each backend feature buys on this workload.
  TextTable Sensitivity;
  Sensitivity.setHeader({"Hook variation", "-O3 cycles", "vs full"});
  auto Report = [&](const char *Label, BackendHooks Variant) {
    SimResult R = compileAndRun(Module, *Traits, Variant, OptLevel::O3);
    double Ratio = static_cast<double>(R.Cycles) /
                   static_cast<double>(O3.Cycles);
    Sensitivity.addRow({Label, std::to_string(R.Cycles),
                        TextTable::formatDouble(Ratio, 2) + "x"});
  };
  BackendHooks NoHw = Hooks;
  NoHw.HardwareLoops = false;
  Report("no hardware loops", NoHw);
  BackendHooks NoVec = Hooks;
  NoVec.VectorWidth = 0;
  Report("no SIMD", NoVec);
  BackendHooks SlowLoads = Hooks;
  SlowLoads.Latency = [](InstrClass C) {
    return C == InstrClass::Load ? 6 : 1;
  };
  Report("6-cycle loads", SlowLoads);
  std::printf("== hook sensitivity ==\n%s", Sensitivity.render().c_str());
  return 0;
}
