//===- bench/flywheel_trajectory.cpp - self-training trajectory sweep ---------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// The self-training flywheel trajectory: run generate→repair→fine-tune
/// generations over all three held-out evaluation targets against the
/// shared bench system and chart how aggregate pass@1 and the
/// repair-reliance ratio move per generation. The acceptance gate makes
/// pass@1 monotone non-decreasing and reliance non-increasing by
/// construction; the bench reports how far the flywheel actually climbs.
/// Merges a "flywheel" section (schema "vega-flywheel-bench-1") into
/// BENCH_repair.json, preserving every other field of the document.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "flywheel/Flywheel.h"
#include "support/Json.h"
#include "support/TextTable.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace vega;

int main(int argc, char **argv) {
  std::string ReportPath = "BENCH_repair.json";
  flywheel::FlywheelOptions Opts;
  Opts.Targets = TargetDatabase::evaluationTargetNames();
  Opts.Generations = 3;
  Opts.FineTuneEpochs = 2;
  Opts.BeamWidth = 4;
  Opts.MaxRounds = 2;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Val = [&](const std::string &Prefix) -> const char * {
      return Arg.rfind(Prefix, 0) == 0 ? Arg.c_str() + Prefix.size()
                                       : nullptr;
    };
    if (const char *V = Val("--report="))
      ReportPath = V;
    else if (const char *V = Val("--generations="))
      Opts.Generations = std::atoi(V);
    else if (const char *V = Val("--ft-epochs="))
      Opts.FineTuneEpochs = std::atoi(V);
  }

  VegaSystem &System = bench::system();
  flywheel::FlywheelEngine Engine(System, Opts);
  StatusOr<flywheel::FlywheelReport> Report = Engine.run();
  if (!Report.isOk()) {
    std::fprintf(stderr, "flywheel_trajectory: %s\n",
                 Report.status().toString().c_str());
    return 1;
  }

  TextTable Table;
  Table.setHeader({"Gen", "Pass@1", "Greedy", "Reliance", "Harvested",
                   "Added", "Loss", "Accepted"});
  for (const flywheel::GenerationStats &G : Report->Generations)
    Table.addRow(
        {std::to_string(G.Generation), TextTable::formatPercent(G.Pass1),
         TextTable::formatPercent(G.GreedyPass1),
         TextTable::formatPercent(G.RepairReliance),
         std::to_string(G.HarvestedPositives + G.HarvestedNegatives),
         std::to_string(G.PairsAdded),
         G.Generation == 0 ? std::string("-")
                           : TextTable::formatDouble(G.TrainMeanLoss, 4),
         G.Accepted ? "yes" : "no"});

  const flywheel::GenerationStats &First = Report->Generations.front();
  const flywheel::GenerationStats &Last = Report->Generations.back();
  std::printf("== self-training flywheel trajectory ==\n%s\n"
              "%d generation(s) over %zu target(s): pass@1 %s -> %s, "
              "repair reliance %s -> %s, %zu pair(s) harvested into the "
              "corpus\n",
              Table.render().c_str(), Opts.Generations, Opts.Targets.size(),
              TextTable::formatPercent(First.Pass1).c_str(),
              TextTable::formatPercent(Last.Pass1).c_str(),
              TextTable::formatPercent(First.RepairReliance).c_str(),
              TextTable::formatPercent(Last.RepairReliance).c_str(),
              Report->TotalPairsAdded);

  // The flywheel section: the "vega-flywheel-1" report body re-badged for
  // the bench document, plus the bench epoch count.
  Json Section = Json::object();
  Section.set("schema", "vega-flywheel-bench-1");
  Section.set("epochs", bench::defaultEpochs());
  // Named, not a temporary: fields() returns a reference into this object.
  const Json Body = flywheel::reportToJson(*Report);
  for (const auto &[Key, V] : Body.fields()) {
    if (Key == "schema")
      continue;
    Section.set(Key, V);
  }

  // Merge into BENCH_repair.json, rebuilding the document field-by-field
  // (Json::set appends rather than replaces).
  Json Old = Json::object();
  {
    std::ifstream In(ReportPath);
    if (In) {
      std::stringstream Buffer;
      Buffer << In.rdbuf();
      StatusOr<Json> Parsed = Json::parse(Buffer.str());
      if (Parsed.isOk() && Parsed->isObject())
        Old = std::move(*Parsed);
    }
  }
  Json Doc = Json::object();
  if (!Old.get("schema"))
    Doc.set("schema", "vega-repair-bench-2");
  for (const auto &[Key, V] : Old.fields()) {
    if (Key == "flywheel")
      continue;
    Doc.set(Key, V);
  }
  Doc.set("flywheel", std::move(Section));

  if (FILE *F = std::fopen(ReportPath.c_str(), "w")) {
    std::string Dump = Doc.dump(2);
    std::fwrite(Dump.data(), 1, Dump.size(), F);
    std::fputc('\n', F);
    std::fclose(F);
    std::printf("report merged into %s\n", ReportPath.c_str());
  } else {
    std::fprintf(stderr, "flywheel_trajectory: cannot write %s\n",
                 ReportPath.c_str());
    return 1;
  }
  return 0;
}
