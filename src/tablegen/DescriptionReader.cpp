//===- tablegen/DescriptionReader.cpp - Target description reader ----------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "tablegen/DescriptionReader.h"

#include "lexer/Lexer.h"

#include <cctype>

using namespace vega;

namespace {

std::string unquote(const std::string &Literal) {
  if (Literal.size() >= 2 && Literal.front() == '"' && Literal.back() == '"')
    return Literal.substr(1, Literal.size() - 2);
  return Literal;
}

/// Extracts enum declarations: "enum [class] Name [: type] { A, B = 4, C };"
void extractEnums(const std::vector<Token> &Tokens, const std::string &Path,
                  DescriptionFile &Out) {
  for (size_t I = 0; I < Tokens.size(); ++I) {
    if (!Tokens[I].isKeyword("enum"))
      continue;
    size_t J = I + 1;
    if (J < Tokens.size() && Tokens[J].isKeyword("class"))
      ++J;
    if (J >= Tokens.size() || Tokens[J].Kind != TokenKind::Identifier)
      continue;
    DescEnum Enum;
    Enum.Name = Tokens[J].Text;
    Enum.Path = Path;
    ++J;
    // Optional underlying type.
    if (J < Tokens.size() && Tokens[J].isPunct(":"))
      while (J < Tokens.size() && !Tokens[J].isPunct("{"))
        ++J;
    if (J >= Tokens.size() || !Tokens[J].isPunct("{"))
      continue;
    ++J;
    bool ExpectMember = true;
    bool InInitializer = false;
    int Depth = 0;
    for (; J < Tokens.size(); ++J) {
      const Token &T = Tokens[J];
      if (T.isPunct("{") || T.isPunct("(") || T.isPunct("["))
        ++Depth;
      else if (T.isPunct(")") || T.isPunct("]"))
        --Depth;
      else if (T.isPunct("}")) {
        if (Depth == 0)
          break;
        --Depth;
      } else if (Depth == 0 && T.isPunct(",")) {
        ExpectMember = true;
        InInitializer = false;
      } else if (Depth == 0 && T.isPunct("=")) {
        InInitializer = true;
      } else if (Depth == 0 && InInitializer &&
                 T.Kind == TokenKind::Identifier) {
        Enum.InitRefs.push_back(T.Text);
      } else if (Depth == 0 && ExpectMember &&
                 T.Kind == TokenKind::Identifier) {
        Enum.Members.push_back(T.Text);
        ExpectMember = false;
      }
    }
    if (!Enum.Members.empty())
      Out.Enums.push_back(std::move(Enum));
    I = J;
  }
}

/// Extracts "Field = Value" assignments (TableGen record fields, 'let'
/// clauses, and plain C++ initializations alike).
void extractAssignments(const std::vector<Token> &Tokens,
                        const std::string &Path, DescriptionFile &Out) {
  for (size_t I = 0; I + 2 < Tokens.size(); ++I) {
    if (!Tokens[I + 1].isPunct("="))
      continue;
    const Token &Lhs = Tokens[I];
    const Token &Rhs = Tokens[I + 2];
    if (Lhs.Kind != TokenKind::Identifier)
      continue;
    if (Rhs.Kind != TokenKind::StringLiteral &&
        Rhs.Kind != TokenKind::Identifier &&
        Rhs.Kind != TokenKind::IntLiteral)
      continue;
    DescAssignment Assign;
    Assign.Field = Lhs.Text;
    Assign.ValueIsString = Rhs.Kind == TokenKind::StringLiteral;
    Assign.Value = Assign.ValueIsString ? unquote(Rhs.Text) : Rhs.Text;
    Assign.Path = Path;
    Out.Assignments.push_back(std::move(Assign));
  }
}

/// Extracts TableGen records: "def Name : Class<...> { fields } | ;".
void extractRecords(const std::vector<Token> &Tokens, const std::string &Path,
                    DescriptionFile &Out) {
  for (size_t I = 0; I + 1 < Tokens.size(); ++I) {
    if (!Tokens[I].isKeyword("def"))
      continue;
    if (Tokens[I + 1].Kind != TokenKind::Identifier)
      continue;
    DescRecord Record;
    Record.Name = Tokens[I + 1].Text;
    Record.Path = Path;
    size_t J = I + 2;
    if (J < Tokens.size() && Tokens[J].isPunct(":")) {
      ++J;
      if (J < Tokens.size() && Tokens[J].Kind == TokenKind::Identifier)
        Record.ParentClass = Tokens[J].Text;
      // Skip template args.
      if (J + 1 < Tokens.size() && Tokens[J + 1].isPunct("<")) {
        int Depth = 0;
        ++J;
        for (; J < Tokens.size(); ++J) {
          if (Tokens[J].isPunct("<"))
            ++Depth;
          else if (Tokens[J].isPunct(">") && --Depth == 0) {
            ++J;
            break;
          }
        }
      } else {
        ++J;
      }
    }
    if (J < Tokens.size() && Tokens[J].isPunct("{")) {
      int Depth = 1;
      size_t BodyStart = ++J;
      for (; J < Tokens.size() && Depth > 0; ++J) {
        if (Tokens[J].isPunct("{"))
          ++Depth;
        else if (Tokens[J].isPunct("}"))
          --Depth;
      }
      std::vector<Token> Body(Tokens.begin() + BodyStart,
                              Tokens.begin() + (J > BodyStart ? J - 1 : J));
      DescriptionFile Temp;
      extractAssignments(Body, Path, Temp);
      Record.Fields = std::move(Temp.Assignments);
      // The scan loop leaves J one past the closing '}'; step back so the
      // outer loop's increment lands exactly on the next token.
      if (J > BodyStart)
        --J;
    }
    Out.Records.push_back(std::move(Record));
    I = J;
  }
}

/// True for ALL_CAPS_WITH_UNDERSCORE macro spellings.
bool looksLikeMacroName(const std::string &Name) {
  bool HasUnderscore = false;
  for (char C : Name) {
    if (C == '_') {
      HasUnderscore = true;
      continue;
    }
    if (!std::isupper(static_cast<unsigned char>(C)) &&
        !std::isdigit(static_cast<unsigned char>(C)))
      return false;
  }
  return HasUnderscore;
}

/// Extracts .def macro lists: "ELF_RELOC(R_RISCV_HI20, 26)" becomes an
/// enum-like list named after the macro. With \p MacroNamesOnly, only
/// ALL_CAPS macro spellings are accepted (used on .h files, where ordinary
/// function calls must not be mistaken for entries).
void extractDefEntries(const std::vector<Token> &Tokens,
                       const std::string &Path, DescriptionFile &Out,
                       bool MacroNamesOnly = false) {
  std::map<std::string, DescEnum> ByMacro;
  for (size_t I = 0; I + 2 < Tokens.size(); ++I) {
    if (Tokens[I].Kind != TokenKind::Identifier || !Tokens[I + 1].isPunct("("))
      continue;
    if (Tokens[I + 2].Kind != TokenKind::Identifier)
      continue;
    if (MacroNamesOnly && !looksLikeMacroName(Tokens[I].Text))
      continue;
    DescEnum &Enum = ByMacro[Tokens[I].Text];
    Enum.Name = Tokens[I].Text;
    Enum.Path = Path;
    Enum.Members.push_back(Tokens[I + 2].Text);
  }
  for (auto &[Name, Enum] : ByMacro)
    Out.Enums.push_back(std::move(Enum));
}

} // namespace

DescriptionFile DescriptionFile::parse(std::string Path,
                                       std::string_view Content) {
  DescriptionFile File;
  File.Path = std::move(Path);
  std::vector<Token> Tokens = Lexer::tokenize(Content);
  for (const Token &T : Tokens)
    if (T.Kind == TokenKind::Identifier)
      File.Tokens.insert(T.Text);

  bool IsDef = File.Path.size() > 4 &&
               File.Path.compare(File.Path.size() - 4, 4, ".def") == 0;
  bool IsTd = File.Path.size() > 3 &&
              File.Path.compare(File.Path.size() - 3, 3, ".td") == 0;
  if (IsDef) {
    extractDefEntries(Tokens, File.Path, File);
  } else {
    extractEnums(Tokens, File.Path, File);
    extractAssignments(Tokens, File.Path, File);
    extractDefEntries(Tokens, File.Path, File, /*MacroNamesOnly=*/true);
    if (IsTd)
      extractRecords(Tokens, File.Path, File);
    // Class/struct declarations: "class Name" / "struct Name" followed by
    // '{', ';', or ':' (TableGen classes included).
    for (size_t I = 0; I + 1 < Tokens.size(); ++I) {
      if (!(Tokens[I].isKeyword("class") || Tokens[I].isKeyword("struct")))
        continue;
      if (Tokens[I + 1].Kind != TokenKind::Identifier)
        continue;
      // "enum class Name" is an enum, not a class.
      if (I > 0 && Tokens[I - 1].isKeyword("enum"))
        continue;
      File.Classes.push_back(Tokens[I + 1].Text);
    }
  }
  return File;
}

void DescriptionIndex::addFile(std::string Path, std::string_view Content) {
  DescriptionFile File = DescriptionFile::parse(std::move(Path), Content);
  for (const std::string &Tok : File.Tokens)
    TokenToFiles[Tok].push_back(File.Path);
  for (const DescAssignment &A : File.Assignments)
    AllAssignments.push_back(A);
  for (const DescEnum &E : File.Enums)
    AllEnums.push_back(E);
  for (const DescRecord &R : File.Records)
    AllRecords.push_back(R);
  for (const std::string &C : File.Classes)
    AllClasses.insert(C);
  Files.push_back(std::move(File));
}

void DescriptionIndex::addDirectory(const VirtualFileSystem &VFS,
                                    std::string_view Dir) {
  for (const VirtualFile *File : VFS.filesUnder(Dir))
    addFile(File->Path, File->Content);
}

const std::vector<std::string> &
DescriptionIndex::filesContaining(const std::string &Token) const {
  static const std::vector<std::string> Empty;
  auto It = TokenToFiles.find(Token);
  return It == TokenToFiles.end() ? Empty : It->second;
}

bool DescriptionIndex::containsToken(const std::string &Token) const {
  return TokenToFiles.count(Token) != 0;
}

std::vector<const DescAssignment *>
DescriptionIndex::assignmentsOf(const std::string &Field) const {
  std::vector<const DescAssignment *> Result;
  for (const DescAssignment &A : AllAssignments)
    if (A.Field == Field)
      Result.push_back(&A);
  return Result;
}

const DescEnum *
DescriptionIndex::enumOfMember(const std::string &Member) const {
  for (const DescEnum &E : AllEnums)
    for (const std::string &M : E.Members)
      if (M == Member)
        return &E;
  return nullptr;
}

const DescEnum *DescriptionIndex::enumNamed(const std::string &Name) const {
  for (const DescEnum &E : AllEnums)
    if (E.Name == Name)
      return &E;
  return nullptr;
}
