//===- tests/SupportTest.cpp - vega_support unit tests -----------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/BinaryIO.h"
#include "support/Error.h"
#include "support/Json.h"
#include "support/RNG.h"
#include "support/Status.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"
#include "support/ThreadPool.h"
#include "support/VirtualFileSystem.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>

using namespace vega;

TEST(StringUtils, SplitKeepsEmptyPieces) {
  auto Pieces = splitString("a,,b", ',');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[1], "");
  EXPECT_EQ(Pieces[2], "b");
}

TEST(StringUtils, SplitDropsEmptyWhenAsked) {
  auto Pieces = splitString("::a::b::", ':', /*KeepEmpty=*/false);
  ASSERT_EQ(Pieces.size(), 2u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[1], "b");
}

TEST(StringUtils, SplitLinesHandlesCRLFAndTrailingNewline) {
  auto Lines = splitLines("one\r\ntwo\nthree\n");
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_EQ(Lines[0], "one");
  EXPECT_EQ(Lines[1], "two");
  EXPECT_EQ(Lines[2], "three");
}

TEST(StringUtils, TrimRemovesSurroundingWhitespaceOnly) {
  EXPECT_EQ(trimString("  a b \t"), "a b");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("   "), "");
}

TEST(StringUtils, JoinInterleavesSeparator) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, "::"), "a::b::c");
  EXPECT_EQ(joinStrings({}, ","), "");
}

TEST(StringUtils, ContainsIgnoreCase) {
  EXPECT_TRUE(containsIgnoreCase("OPERAND_PCREL", "pcrel"));
  EXPECT_FALSE(containsIgnoreCase("abc", "abcd"));
  EXPECT_TRUE(containsIgnoreCase("anything", ""));
}

TEST(StringUtils, PartialMatchRequiresThreeChars) {
  EXPECT_FALSE(partiallyMatches("ab", "abcdef"));
  EXPECT_TRUE(partiallyMatches("ARM", "ARMELFObjectWriter"));
  EXPECT_TRUE(partiallyMatches("ARMELFObjectWriter", "ARM"));
  EXPECT_FALSE(partiallyMatches("RISCV", "Mips"));
}

TEST(StringUtils, IdentifierWordSplitting) {
  auto Words = splitIdentifierWords("IsPCRel");
  ASSERT_EQ(Words.size(), 3u);
  EXPECT_EQ(Words[0], "is");
  EXPECT_EQ(Words[1], "pc");
  EXPECT_EQ(Words[2], "rel");

  Words = splitIdentifierWords("fixup_riscv_pcrel_hi20");
  ASSERT_EQ(Words.size(), 4u);
  EXPECT_EQ(Words[1], "riscv");
  EXPECT_EQ(Words[3], "hi20");
}

TEST(StringUtils, IdentifierSimilarityBounds) {
  EXPECT_DOUBLE_EQ(identifierSimilarity("getRelocType", "getRelocType"), 1.0);
  EXPECT_GT(identifierSimilarity("getRelocType", "getRelocKind"), 0.4);
  EXPECT_DOUBLE_EQ(identifierSimilarity("abc", ""), 0.0);
}

TEST(StringUtils, SharedStemConnectsPCRelSpellings) {
  // The paper's IsPCRel ↔ OPERAND_PCREL partial match.
  EXPECT_TRUE(sharesSignificantStem("IsPCRel", "OPERAND_PCREL"));
  EXPECT_FALSE(sharesSignificantStem("Kind", "OPERAND_PCREL"));
  EXPECT_TRUE(sharesSignificantStem("ARMELFObjectWriter", "Name_ARM_x", 3));
}

TEST(StringUtils, ReplaceAllReplacesEveryOccurrence) {
  EXPECT_EQ(replaceAll("Mips::fixup_mips", "Mips", "RISCV"),
            "RISCV::fixup_mips");
  EXPECT_EQ(replaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replaceAll("abc", "", "x"), "abc");
}

TEST(RNG, DeterministicAcrossInstances) {
  RNG A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, BoundedValues) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(R.nextBelow(10), 10u);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNG, ShuffleIsAPermutation) {
  RNG R(3);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  auto Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(VirtualFileSystem, AddGetRoundTrip) {
  VirtualFileSystem VFS;
  VFS.addFile("lib/Target/ARM/ARM.td", "def ARM");
  ASSERT_TRUE(VFS.getFile("lib/Target/ARM/ARM.td").has_value());
  EXPECT_EQ(*VFS.getFile("lib/Target/ARM/ARM.td"), "def ARM");
  EXPECT_FALSE(VFS.getFile("lib/Target/ARM/Other.td").has_value());
}

TEST(VirtualFileSystem, NormalizesPaths) {
  VirtualFileSystem VFS;
  VFS.addFile("./a//b/c.h", "x");
  EXPECT_TRUE(VFS.exists("a/b/c.h"));
  EXPECT_TRUE(VFS.exists("/a/b/c.h"));
}

TEST(VirtualFileSystem, DirectoryPrefixQueriesAreExact) {
  VirtualFileSystem VFS;
  VFS.addFile("lib/Target/ARM/ARM.td", "1");
  VFS.addFile("lib/Target/ARM64/ARM64.td", "2");
  auto Files = VFS.filesUnder("lib/Target/ARM");
  ASSERT_EQ(Files.size(), 1u);
  EXPECT_EQ(Files[0]->Path, "lib/Target/ARM/ARM.td");
}

TEST(VirtualFileSystem, ExtensionFiltering) {
  VirtualFileSystem VFS;
  VFS.addFile("d/a.td", "");
  VFS.addFile("d/b.h", "");
  VFS.addFile("d/c.td", "");
  EXPECT_EQ(VFS.filesUnderWithExtension("d", ".td").size(), 2u);
  EXPECT_EQ(VFS.filesUnderWithExtension("d", ".h").size(), 1u);
}

TEST(VirtualFileSystem, AppendCreatesOrExtends) {
  VirtualFileSystem VFS;
  VFS.appendToFile("x.txt", "a");
  VFS.appendToFile("x.txt", "b");
  EXPECT_EQ(*VFS.getFile("x.txt"), "ab");
}

TEST(VirtualFileSystem, RemoveFile) {
  VirtualFileSystem VFS;
  VFS.addFile("x", "1");
  EXPECT_TRUE(VFS.removeFile("x"));
  EXPECT_FALSE(VFS.removeFile("x"));
  EXPECT_FALSE(VFS.exists("x"));
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable Table;
  Table.setHeader({"Name", "Value"});
  Table.addRow({"alpha", "1"});
  Table.addRow({"b", "22"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("Name"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  // Numeric column right-aligned: "22" should line up under " 1".
  EXPECT_NE(Out.find("22"), std::string::npos);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(TextTable::formatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::formatPercent(0.715), "71.5%");
}

TEST(Expected, SuccessAndError) {
  Expected<int> Ok(42);
  ASSERT_TRUE(Ok);
  EXPECT_EQ(*Ok, 42);
  Expected<int> Err = makeError<int>("nope");
  EXPECT_FALSE(Err);
  EXPECT_EQ(Err.getError(), "nope");
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.jobs(), 4u);
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, SerialFastPathWithOneJob) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.jobs(), 1u);
  std::vector<size_t> Order;
  Pool.parallelFor(5, [&](size_t I) { Order.push_back(I); });
  // jobs=1 runs inline on the caller in ascending order — the exact
  // pre-pool serial code path.
  ASSERT_EQ(Order.size(), 5u);
  for (size_t I = 0; I < 5; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ThreadPool, LaneIdsStayInRange) {
  ThreadPool Pool(3);
  EXPECT_EQ(ThreadPool::currentLane(), -1);
  std::atomic<bool> Bad{false};
  Pool.parallelFor(64, [&](size_t) {
    int Lane = ThreadPool::currentLane();
    if (Lane < 0 || Lane >= 3)
      Bad = true;
  });
  EXPECT_FALSE(Bad.load());
  EXPECT_EQ(ThreadPool::currentLane(), -1);
}

TEST(ThreadPool, ReduceMatchesSerialFoldBitForBit) {
  // parallelReduce folds partials in ascending index order, so the result
  // must be bit-identical to the plain serial loop regardless of lanes.
  auto Map = [](size_t I) {
    return 1.0f / static_cast<float>(I + 1); // order-sensitive f32 terms
  };
  float Serial = 0.0f;
  for (size_t I = 0; I < 512; ++I)
    Serial += Map(I);
  ThreadPool Pool(4);
  float Parallel = Pool.parallelReduce<float>(
      512, 0.0f, Map, [](float Acc, float V) { return Acc + V; });
  EXPECT_EQ(Serial, Parallel);
}

TEST(ThreadPool, ParallelMapPreservesIndexing) {
  ThreadPool Pool(2);
  std::vector<int> Out =
      Pool.parallelMap<int>(100, [](size_t I) { return static_cast<int>(I * I); });
  ASSERT_EQ(Out.size(), 100u);
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Out[I], static_cast<int>(I * I));
}

TEST(ThreadPool, FirstExceptionPropagatesToCaller) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(32,
                                [&](size_t I) {
                                  if (I == 7)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool stays usable after a failed batch.
  std::atomic<int> Count{0};
  Pool.parallelFor(8, [&](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 8);
}

TEST(ThreadPool, DefaultJobsHonorsEnvOverride) {
  setenv("VEGA_JOBS", "3", 1);
  EXPECT_EQ(ThreadPool::defaultJobs(), 3u);
  unsetenv("VEGA_JOBS");
  EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

// ---- Status / StatusOr ----------------------------------------------------

TEST(Status, OkCarriesNoMessageAndExitCodeZero) {
  Status St = Status::ok();
  EXPECT_TRUE(St.isOk());
  EXPECT_EQ(St.toString(), "ok");
  EXPECT_EQ(St.toExitCode(), 0);
}

TEST(Status, CodesMapToDistinctExitCodes) {
  EXPECT_EQ(Status::internal("x").toExitCode(), 1);
  EXPECT_EQ(Status::invalidArgument("x").toExitCode(), 2);
  EXPECT_EQ(Status::notFound("x").toExitCode(), 3);
  EXPECT_EQ(Status::failedPrecondition("x").toExitCode(), 4);
  EXPECT_EQ(Status::dataLoss("x").toExitCode(), 5);
  EXPECT_EQ(Status::unavailable("x").toExitCode(), 6);
  EXPECT_EQ(Status::unimplemented("x").toExitCode(), 7);
}

TEST(Status, ToStringPrefixesCodeName) {
  EXPECT_EQ(Status::dataLoss("checksum mismatch").toString(),
            "data-loss: checksum mismatch");
  EXPECT_EQ(Status::notFound("unknown target 'Z80'").toString(),
            "not-found: unknown target 'Z80'");
}

TEST(StatusOr, ValueAndErrorSides) {
  StatusOr<int> Good = 42;
  ASSERT_TRUE(Good.isOk());
  EXPECT_EQ(*Good, 42);

  StatusOr<int> Bad = Status::notFound("nope");
  ASSERT_FALSE(Bad.isOk());
  EXPECT_EQ(Bad.status().code(), StatusCode::NotFound);
  EXPECT_EQ(Bad.status().message(), "nope");
}

TEST(StatusOr, MoveOnlyValues) {
  StatusOr<std::unique_ptr<int>> P = std::make_unique<int>(7);
  ASSERT_TRUE(P.isOk());
  std::unique_ptr<int> Owned = std::move(*P);
  EXPECT_EQ(*Owned, 7);
}

// ---- Json -----------------------------------------------------------------

TEST(Json, DumpIsDeterministicAndInsertionOrdered) {
  Json Doc = Json::object();
  Doc.set("b", 1);
  Doc.set("a", "two");
  Json Arr = Json::array();
  Arr.push(true);
  Arr.push(Json());
  Arr.push(1.5);
  Doc.set("list", std::move(Arr));
  EXPECT_EQ(Doc.dump(), "{\"b\":1,\"a\":\"two\",\"list\":[true,null,1.5]}");
}

TEST(Json, ParseRoundTripsCompactDump) {
  const char *Text =
      "{\"name\":\"RISCV\",\"n\":3,\"ok\":true,\"none\":null,"
      "\"xs\":[1,2,3],\"nested\":{\"k\":\"v\"}}";
  StatusOr<Json> Doc = Json::parse(Text);
  ASSERT_TRUE(Doc.isOk());
  EXPECT_EQ(Doc->dump(), Text);
  EXPECT_EQ(Doc->getString("name"), "RISCV");
  EXPECT_EQ(Doc->getNumber("n"), 3.0);
  ASSERT_NE(Doc->get("xs"), nullptr);
  EXPECT_EQ(Doc->get("xs")->size(), 3u);
}

TEST(Json, ParseRejectsMalformedDocuments) {
  EXPECT_FALSE(Json::parse("").isOk());
  EXPECT_FALSE(Json::parse("{").isOk());
  EXPECT_FALSE(Json::parse("[1,]").isOk());
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing").isOk());
  EXPECT_FALSE(Json::parse("nul").isOk());
  EXPECT_EQ(Json::parse("{").status().code(), StatusCode::InvalidArgument);
}

TEST(Json, StringEscapesRoundTrip) {
  Json Doc = Json::object();
  Doc.set("s", "line\none\t\"quoted\" \\ end");
  StatusOr<Json> Back = Json::parse(Doc.dump());
  ASSERT_TRUE(Back.isOk());
  EXPECT_EQ(Back->getString("s"), "line\none\t\"quoted\" \\ end");
}

// ---- BinaryIO -------------------------------------------------------------

TEST(BinaryIO, WriterReaderRoundTrip) {
  BinaryWriter W;
  W.u8(7);
  W.u32(0xDEADBEEFu);
  W.u64(1ULL << 40);
  W.i32(-12345);
  W.f64(3.25);
  W.str("hello");
  BinaryReader R(W.blob());
  uint8_t A = 0;
  uint32_t B = 0;
  uint64_t C = 0;
  int32_t D = 0;
  double E = 0;
  std::string S;
  EXPECT_TRUE(R.u8(A) && R.u32(B) && R.u64(C) && R.i32(D) && R.f64(E) &&
              R.str(S));
  EXPECT_EQ(A, 7u);
  EXPECT_EQ(B, 0xDEADBEEFu);
  EXPECT_EQ(C, 1ULL << 40);
  EXPECT_EQ(D, -12345);
  EXPECT_EQ(E, 3.25);
  EXPECT_EQ(S, "hello");
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
}

TEST(BinaryIO, ReaderFailsStickyOnTruncation) {
  BinaryWriter W;
  W.u32(99);
  BinaryReader R(W.blob());
  uint64_t Big = 0;
  EXPECT_FALSE(R.u64(Big)); // only 4 bytes available
  EXPECT_FALSE(R.ok());
  uint8_t Byte = 0;
  EXPECT_FALSE(R.u8(Byte)); // stays failed even though a byte remains
}

TEST(BinaryIO, StringLengthBeyondBufferFails) {
  BinaryWriter W;
  W.u64(1000); // claims 1000 bytes follow
  W.bytes("abc");
  BinaryReader R(W.blob());
  std::string S;
  EXPECT_FALSE(R.str(S));
  EXPECT_FALSE(R.ok());
}

TEST(BinaryIO, Fnv1aIsStableAndOrderSensitive) {
  // The project-wide basis (also used by the corpus/model fingerprints);
  // artifact checksums depend on these exact values staying put.
  EXPECT_EQ(fnv1a(""), 1469598103934665603ULL);
  EXPECT_EQ(fnv1a("a"), fnv1a("a"));
  EXPECT_NE(fnv1a("abc"), fnv1a("acb"));
  EXPECT_NE(fnv1a("abc"), fnv1a("ab"));
}

// ---- ArgParse -------------------------------------------------------------

namespace {
ArgParse cliParser() {
  ArgParse P("tool", "test tool");
  P.addOption("jobs", "N", "lanes");
  P.addOption("session", "file", "artifact");
  P.addFlag("json", "json output");
  P.addCommand("generate", "<target> [epochs]", "emit", 1, 2);
  P.addCommand("targets", "", "list", 0, 0);
  return P;
}
} // namespace

TEST(ArgParse, FlagsAnywhereAroundTheCommand) {
  ArgParse P = cliParser();
  ASSERT_TRUE(P.parse({"--jobs=4", "generate", "RISCV", "--json"}).isOk());
  EXPECT_EQ(P.command(), "generate");
  ASSERT_EQ(P.positionals().size(), 1u);
  EXPECT_EQ(P.positionals()[0], "RISCV");
  EXPECT_TRUE(P.has("json"));
  EXPECT_EQ(P.getInt("jobs", 0), 4);
}

TEST(ArgParse, SeparateValueFormAndDefaults) {
  ArgParse P = cliParser();
  ASSERT_TRUE(P.parse({"generate", "RISCV", "8", "--session", "x.vega"}).isOk());
  EXPECT_EQ(P.get("session"), "x.vega");
  ASSERT_EQ(P.positionals().size(), 2u);
  EXPECT_EQ(P.positionals()[1], "8");
  EXPECT_FALSE(P.has("jobs"));
  EXPECT_EQ(P.getInt("jobs", 9), 9);
}

TEST(ArgParse, ArityAndUnknownsAreInvalidArgument) {
  EXPECT_EQ(cliParser().parse({"generate"}).code(),
            StatusCode::InvalidArgument); // too few positionals
  EXPECT_EQ(cliParser().parse({"generate", "a", "b", "c"}).code(),
            StatusCode::InvalidArgument); // too many
  EXPECT_EQ(cliParser().parse({"--nope", "targets"}).code(),
            StatusCode::InvalidArgument); // unknown flag
  EXPECT_EQ(cliParser().parse({"frobnicate"}).code(),
            StatusCode::InvalidArgument); // unknown command
}

TEST(ArgParse, PassthroughCollectsUnknownFlags) {
  ArgParse P("bench", "bench tool");
  P.addOption("inference-report", "file", "report");
  P.setPassthroughUnknown(true);
  ASSERT_TRUE(P.parse({"--benchmark_filter=BM_Gemm", "--inference-report=r.json",
                       "--benchmark_min_time=0.01"})
                  .isOk());
  EXPECT_EQ(P.get("inference-report"), "r.json");
  ASSERT_EQ(P.passthroughArgs().size(), 2u);
  EXPECT_EQ(P.passthroughArgs()[0], "--benchmark_filter=BM_Gemm");
  EXPECT_EQ(P.passthroughArgs()[1], "--benchmark_min_time=0.01");
}

TEST(ArgParse, UsageListsFlagsAndCommands) {
  std::string U = cliParser().usage();
  EXPECT_NE(U.find("--jobs=<N>"), std::string::npos);
  EXPECT_NE(U.find("generate <target> [epochs]"), std::string::npos);
  EXPECT_NE(U.find("targets"), std::string::npos);
}
