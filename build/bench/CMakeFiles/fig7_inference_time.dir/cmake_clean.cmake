file(REMOVE_RECURSE
  "CMakeFiles/fig7_inference_time.dir/fig7_inference_time.cpp.o"
  "CMakeFiles/fig7_inference_time.dir/fig7_inference_time.cpp.o.d"
  "fig7_inference_time"
  "fig7_inference_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_inference_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
