# Empty compiler generated dependencies file for minicc_pipeline.
# This may be replaced when dependencies are built.
