# Empty dependencies file for vega_core.
# This may be replaced when dependencies are built.
