//===- ast/Normalize.cpp - Statement normalization --------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "ast/Normalize.h"

#include <cassert>
#include <optional>

using namespace vega;

namespace {

/// An equality test "(Scrutinee == Value)" pulled out of an if/else-if
/// header.
struct EqualityCondition {
  std::vector<Token> Scrutinee;
  std::vector<Token> Value;
};

/// Matches "if ( A == B ) {" or "else if ( A == B ) {" headers.
std::optional<EqualityCondition>
matchEqualityHeader(const std::vector<Token> &Tokens) {
  size_t Open = 0;
  while (Open < Tokens.size() && !Tokens[Open].isPunct("("))
    ++Open;
  if (Open == Tokens.size() || Tokens.empty() || !Tokens.back().isPunct("{"))
    return std::nullopt;
  // Find the matching ')'; it must be the second-to-last token.
  size_t Close = Tokens.size() - 2;
  if (Close <= Open || !Tokens[Close].isPunct(")"))
    return std::nullopt;

  // Exactly one top-level '==' between Open+1 and Close.
  int Depth = 0;
  size_t EqPos = 0;
  unsigned EqCount = 0;
  for (size_t I = Open + 1; I < Close; ++I) {
    const Token &T = Tokens[I];
    if (T.isPunct("(") || T.isPunct("["))
      ++Depth;
    else if (T.isPunct(")") || T.isPunct("]"))
      --Depth;
    else if (Depth == 0 && T.isPunct("==")) {
      EqPos = I;
      ++EqCount;
    } else if (Depth == 0 && (T.isPunct("&&") || T.isPunct("||") ||
                              T.isPunct("!") || T.isPunct("!=")))
      return std::nullopt;
  }
  if (EqCount != 1)
    return std::nullopt;

  EqualityCondition Cond;
  Cond.Scrutinee.assign(Tokens.begin() + Open + 1, Tokens.begin() + EqPos);
  Cond.Value.assign(Tokens.begin() + EqPos + 1, Tokens.begin() + Close);
  if (Cond.Scrutinee.empty() || Cond.Value.empty())
    return std::nullopt;
  return Cond;
}

bool sameTokens(const std::vector<Token> &A, const std::vector<Token> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (!(A[I] == B[I]))
      return false;
  return true;
}

bool endsControlFlow(const std::vector<std::unique_ptr<Statement>> &Body) {
  if (Body.empty())
    return false;
  StmtKind K = Body.back()->Kind;
  return K == StmtKind::Return || K == StmtKind::Break;
}

std::unique_ptr<Statement>
makeCase(const EqualityCondition &Cond,
         std::vector<std::unique_ptr<Statement>> Body) {
  std::vector<Token> Label;
  Label.emplace_back(TokenKind::Keyword, "case");
  for (const Token &T : Cond.Value)
    Label.push_back(T);
  Label.emplace_back(TokenKind::Punct, ":");
  auto CaseStmt = std::make_unique<Statement>(StmtKind::Case, std::move(Label));
  CaseStmt->Children = std::move(Body);
  if (!endsControlFlow(CaseStmt->Children)) {
    std::vector<Token> BreakToks;
    BreakToks.emplace_back(TokenKind::Keyword, "break");
    BreakToks.emplace_back(TokenKind::Punct, ";");
    CaseStmt->Children.push_back(
        std::make_unique<Statement>(StmtKind::Break, std::move(BreakToks)));
  }
  return CaseStmt;
}

unsigned normalizeList(std::vector<std::unique_ptr<Statement>> &Stmts);

unsigned normalizeStatement(Statement &Stmt) {
  return normalizeList(Stmt.Children);
}

/// Tries to turn the chain starting at Stmts[Index] into a switch; returns
/// the replacement or nullptr when the shape does not match. On success
/// \p Consumed is the number of chain statements replaced.
std::unique_ptr<Statement>
tryBuildSwitch(std::vector<std::unique_ptr<Statement>> &Stmts, size_t Index,
               size_t &Consumed) {
  auto FirstCond = matchEqualityHeader(Stmts[Index]->Tokens);
  if (!FirstCond || Stmts[Index]->Kind != StmtKind::If)
    return nullptr;

  std::vector<EqualityCondition> Conditions{*FirstCond};
  std::vector<std::vector<std::unique_ptr<Statement>> *> Bodies{
      &Stmts[Index]->Children};
  std::vector<std::unique_ptr<Statement>> *DefaultBody = nullptr;

  size_t I = Index + 1;
  for (; I < Stmts.size(); ++I) {
    Statement &Next = *Stmts[I];
    if (Next.Kind == StmtKind::ElseIf) {
      auto Cond = matchEqualityHeader(Next.Tokens);
      if (!Cond || !sameTokens(Cond->Scrutinee, FirstCond->Scrutinee))
        return nullptr;
      Conditions.push_back(*Cond);
      Bodies.push_back(&Next.Children);
      continue;
    }
    if (Next.Kind == StmtKind::Else) {
      DefaultBody = &Next.Children;
      ++I;
    }
    break;
  }
  // Require at least two arms: a lone "if (x == k)" stays an if.
  if (Conditions.size() < 2)
    return nullptr;

  std::vector<Token> Header;
  Header.emplace_back(TokenKind::Keyword, "switch");
  Header.emplace_back(TokenKind::Punct, "(");
  for (const Token &T : FirstCond->Scrutinee)
    Header.push_back(T);
  Header.emplace_back(TokenKind::Punct, ")");
  Header.emplace_back(TokenKind::Punct, "{");
  auto SwitchStmt =
      std::make_unique<Statement>(StmtKind::Switch, std::move(Header));

  for (size_t Arm = 0; Arm < Conditions.size(); ++Arm)
    SwitchStmt->Children.push_back(
        makeCase(Conditions[Arm], std::move(*Bodies[Arm])));
  if (DefaultBody) {
    std::vector<Token> Label;
    Label.emplace_back(TokenKind::Keyword, "default");
    Label.emplace_back(TokenKind::Punct, ":");
    auto Default =
        std::make_unique<Statement>(StmtKind::Default, std::move(Label));
    Default->Children = std::move(*DefaultBody);
    if (!endsControlFlow(Default->Children)) {
      std::vector<Token> BreakToks;
      BreakToks.emplace_back(TokenKind::Keyword, "break");
      BreakToks.emplace_back(TokenKind::Punct, ";");
      Default->Children.push_back(
          std::make_unique<Statement>(StmtKind::Break, std::move(BreakToks)));
    }
    SwitchStmt->Children.push_back(std::move(Default));
  }

  Consumed = I - Index;
  return SwitchStmt;
}

unsigned normalizeList(std::vector<std::unique_ptr<Statement>> &Stmts) {
  unsigned Rewritten = 0;
  for (size_t I = 0; I < Stmts.size(); ++I) {
    size_t Consumed = 0;
    if (auto Replacement = tryBuildSwitch(Stmts, I, Consumed)) {
      Stmts.erase(Stmts.begin() + static_cast<long>(I),
                  Stmts.begin() + static_cast<long>(I + Consumed));
      Stmts.insert(Stmts.begin() + static_cast<long>(I),
                   std::move(Replacement));
      ++Rewritten;
    }
    Rewritten += normalizeStatement(*Stmts[I]);
  }
  return Rewritten;
}

} // namespace

unsigned vega::normalizeSelectionStatements(FunctionAST &Function) {
  return normalizeList(Function.Body);
}
