//===- serve/Scheduler.h - Continuous decode-step batching -------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shard-local heart of the serving fleet: a continuous-batching
/// scheduler over one VegaSession. The old daemon queued whole requests
/// behind a single batch worker — a request that arrived one tick after a
/// batch started waited for the entire batch to finish. This scheduler
/// instead runs a decode loop at generation-unit granularity:
///
///   * submit() parks a request on a bounded admission queue (a full queue
///     is a typed ResourceExhausted rejection — the backpressure signal the
///     router turns into JSON-RPC -32005).
///   * Each loop iteration first ADMITS: pending requests join the active
///     set mid-flight, up to the admission window; a request whose target
///     is already generating attaches to that generation instead of opening
///     a second one (window-exempt — attaching adds no decode work).
///   * Then it STEPS: one pool fan-out claims up to a lane-count's worth of
///     generation units round-robin across every active request, so all
///     co-active requests advance every step and the pool stays saturated
///     even when one request has most of the remaining units.
///   * Then it RETIRES: completed generations leave the active set and a
///     separate completion worker folds the units (VegaSystem's
///     deterministic template-order merge) and invokes the submitter's
///     callback — response assembly never stalls the decode loop.
///
/// Determinism contract: a generation's bytes depend only on its target.
/// Units execute generateFunction() independently and merge in template
/// order, so a backend produced while co-batched with seven neighbours is
/// byte-identical to one produced solo. Admission order, window size, and
/// step composition affect timing ONLY; timing is visible through spans
/// and metrics, never through payloads.
///
/// pause()/resume() freeze the loop between steps — test hooks for staging
/// a known queue composition (mid-flight admission, backpressure).
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SERVE_SCHEDULER_H
#define VEGA_SERVE_SCHEDULER_H

#include "core/VegaSession.h"
#include "obs/Request.h"
#include "support/Status.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vega {
namespace serve {

struct SchedulerOptions {
  /// Most generations decoding concurrently (the admission window).
  /// Requests beyond the window wait on the admission queue; attaches to an
  /// in-flight target are exempt.
  int Window = 8;
  /// Most requests waiting for admission before submit() rejects with
  /// ResourceExhausted. 0 means unbounded.
  int MaxQueue = 64;
};

/// A live snapshot of the scheduler's counters and occupancy.
struct SchedulerStats {
  uint64_t Steps = 0;      ///< decode-loop iterations that ran units
  uint64_t Admitted = 0;   ///< generations opened
  uint64_t Attached = 0;   ///< requests deduped onto an in-flight generation
  uint64_t Retired = 0;    ///< generations completed and folded
  uint64_t Rejected = 0;   ///< submits bounced off the full queue
  uint64_t Expired = 0;    ///< requests whose deadline passed while queued
  uint64_t MaxCoActive = 0; ///< high-water co-active generations
  uint64_t Active = 0;     ///< generations decoding right now
  uint64_t QueueDepth = 0; ///< requests waiting for admission right now
};

/// The continuous-batching decode loop. One instance per served session;
/// the constructor starts the loop and completion threads, the destructor
/// fails whatever is still pending with Unavailable and joins both.
class Scheduler {
public:
  /// Invoked on the completion worker once the request's generation folds.
  /// Exactly one of the two is meaningful: on success \p Backend points at
  /// the folded backend (shared by every attached request; valid only for
  /// the duration of the call), on failure it is null and \p St carries the
  /// error.
  using Completion =
      std::function<void(const GeneratedBackend *Backend, const Status &St)>;

  Scheduler(VegaSession &Session, SchedulerOptions Options);
  ~Scheduler();

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  /// Queues \p Target for generation. \p Ctx is the submitting request's
  /// telemetry context (nullable); \p Done runs on the completion worker.
  /// Returns ResourceExhausted when the admission queue is full and
  /// Unavailable after shutdown began — in both cases \p Done is NOT
  /// invoked. The target must already be validated against the corpus.
  Status submit(const std::string &Target,
                std::shared_ptr<obs::RequestContext> Ctx, Completion Done);

  SchedulerStats stats() const;

  /// Freezes admission and stepping between loop iterations. In-flight
  /// pool fan-outs finish; nothing new starts until resume().
  void pause();
  void resume();

  /// Serializes heavy model work against the decode loop. The loop holds
  /// this across each step's pool fan-out; completion-side engines that
  /// re-enter the model (repair) must hold it too — the session's pool and
  /// decode path are not concurrency-safe across threads.
  std::mutex &engineMutex() { return EngineMu; }

private:
  struct Waiter {
    std::shared_ptr<obs::RequestContext> Ctx;
    Completion Done;
  };
  struct PendingAdmission {
    std::string Target;
    Waiter W;
  };
  /// One in-flight generation. The list node is created and erased only by
  /// the loop thread; Waiters is additionally appended by submit() under
  /// Mu (the attach path).
  struct ActiveGeneration {
    std::string Target;
    VegaSession::GenerationHandle Handle;
    std::vector<Waiter> Waiters;
  };
  /// One folded generation (or terminal failure) awaiting callbacks.
  struct CompletionItem {
    std::vector<Waiter> Waiters;
    std::shared_ptr<GeneratedBackend> Backend; ///< null => Error is terminal
    Status Error = Status::ok();
  };

  void loop();
  /// Admits from the queue under Mu: attach-dedup first (window-exempt),
  /// then open generations while the window has room.
  void admitLocked();
  /// Claims and runs one step's worth of units across the active set.
  void stepOnce();
  /// Folds completed generations off the active set onto the completion
  /// queue.
  void retireCompleted();
  void completionLoop();
  /// Routes \p W to the completion worker with a terminal \p St.
  void failWaiter(Waiter W, Status St);
  void pushCompletion(CompletionItem Item);
  void publishGauges();

  VegaSession &Session;
  SchedulerOptions Options;

  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::deque<PendingAdmission> Queue; ///< guarded by Mu
  std::list<ActiveGeneration> Active; ///< structure owned by the loop thread
  bool Paused = false;                ///< guarded by Mu
  bool Stop = false;                  ///< guarded by Mu

  std::mutex EngineMu;

  std::mutex CompMu;
  std::condition_variable CompCv;
  std::deque<CompletionItem> Completions; ///< guarded by CompMu
  bool CompStop = false;                  ///< guarded by CompMu

  std::atomic<uint64_t> Steps{0};
  std::atomic<uint64_t> Admitted{0};
  std::atomic<uint64_t> Attached{0};
  std::atomic<uint64_t> Retired{0};
  std::atomic<uint64_t> Rejected{0};
  std::atomic<uint64_t> Expired{0};
  std::atomic<uint64_t> MaxCoActive{0};

  std::thread LoopThread;
  std::thread CompletionThread;
};

} // namespace serve
} // namespace vega

#endif // VEGA_SERVE_SCHEDULER_H
