//===- minicc/Compiler.h - The mini compiler ---------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini compiler: lowers the toy IR to machine code for a synthetic
/// target through the hook table. -O0 is a classic everything-through-the-
/// stack lowering; -O3 runs constant folding, dead-code elimination,
/// strength reduction, loop-invariant code motion, SIMD vectorization,
/// hardware-loop conversion, and latency-aware scheduling — each gated by
/// the backend hooks, so backend quality shows up in the cycle counts.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_MINICC_COMPILER_H
#define VEGA_MINICC_COMPILER_H

#include "minicc/Hooks.h"
#include "minicc/IR.h"

namespace vega {

/// One emitted machine instruction (structural; the simulator prices it).
struct MachineInstr {
  InstrClass Class = InstrClass::Alu;
  int Cycles = 1;
  int Size = 4;
  bool DependsOnPrevLoad = false; ///< scheduling stall candidate
};

/// A machine basic block with its execution count.
struct MachineBlock {
  std::vector<MachineInstr> Instrs;
  int64_t ExecCount = 1;
  bool HardwareLoopBody = false; ///< loop overhead removed by hw loops
};

/// A compiled function.
struct MachineFunction {
  std::string Name;
  std::vector<MachineBlock> Blocks;
  int SpillCount = 0;

  size_t instrCount() const {
    size_t N = 0;
    for (const MachineBlock &B : Blocks)
      N += B.Instrs.size();
    return N;
  }
};

/// A compiled module.
struct MachineProgram {
  std::string Name;
  std::vector<MachineFunction> Functions;
};

/// Optimization level (§4.3 compares -O3 against -O0).
enum class OptLevel { O0, O3 };

/// Compiles \p Fn for the target described by \p Traits and \p Hooks.
MachineFunction compileFunction(const IRFunction &Fn,
                                const TargetTraits &Traits,
                                const BackendHooks &Hooks, OptLevel Level);

/// Compiles a whole module.
MachineProgram compileModule(const IRModule &Module,
                             const TargetTraits &Traits,
                             const BackendHooks &Hooks, OptLevel Level);

} // namespace vega

#endif // VEGA_MINICC_COMPILER_H
