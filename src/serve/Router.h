//===- serve/Router.h - The fleet routing front-end --------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The routing front-end of the serving fleet: a VegaRouter fronts several
/// shards — each a VegaServer with its own warm session, either in-process
/// (LocalShard) or a separate daemon behind an AF_UNIX socket
/// (SocketShard). At startup the router queries every shard's `info` and
/// partitions the target space round-robin into a shard map keyed by
/// target name; each generation request is forwarded VERBATIM to its
/// owning shard's NDJSON loop and the shard's response line is relayed
/// verbatim — byte-transparent, so a response through the router is
/// byte-identical to one from the shard (and therefore to a solo run).
///
/// Admission control: the router tracks in-flight forwards per shard and
/// rejects work for a saturated shard with the typed Overloaded code
/// (-32005) without forwarding — backpressure surfaces at the edge instead
/// of queueing without bound.
///
/// Protocol v2: the router answers `info` itself with schema vega-serve-2,
/// which adds the shard map (`shards: [{id, targets, inFlight,
/// queueDepth}]`) to the v1 fields. Shards keep answering vega-serve-1,
/// and a shard serving without a router is byte-compatible with v1
/// clients. `ping`/`stats` are also answered locally; `shutdown` fans out
/// to every shard before stopping the router's own transports.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SERVE_ROUTER_H
#define VEGA_SERVE_ROUTER_H

#include "serve/Server.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vega {
namespace serve {

/// One shard as the router sees it: an opaque NDJSON line endpoint.
class ShardEndpoint {
public:
  virtual ~ShardEndpoint() = default;
  virtual const std::string &id() const = 0;
  /// One round trip: request line in, response line out. Unavailable when
  /// the shard cannot be reached.
  virtual StatusOr<std::string> call(const std::string &Line) = 0;
  /// The shard's admission-queue depth when observable from this process
  /// (in-process shards); 0 for remote shards.
  virtual uint64_t queueDepth() const { return 0; }
};

/// An in-process shard: owns its session and server. The multi-shard
/// single-process deployment (`vega-serve --router --local-shards N`).
class LocalShard : public ShardEndpoint {
public:
  LocalShard(std::string Id, std::unique_ptr<VegaSession> Session,
             ServerOptions Options);
  ~LocalShard() override;

  const std::string &id() const override { return Id; }
  StatusOr<std::string> call(const std::string &Line) override;
  uint64_t queueDepth() const override;

  VegaServer &server() { return *Server; }

private:
  std::string Id;
  std::unique_ptr<VegaSession> Session;
  std::unique_ptr<VegaServer> Server;
};

/// A shard daemon in another process, behind an AF_UNIX socket
/// (`vega-serve --router --shard /path/sock`). Connect-per-call.
class SocketShard : public ShardEndpoint {
public:
  SocketShard(std::string Id, std::string Path);

  const std::string &id() const override { return Id; }
  StatusOr<std::string> call(const std::string &Line) override;

private:
  std::string Id;
  std::string Path;
};

struct RouterOptions {
  /// Most concurrently forwarded calls per shard before the router answers
  /// Overloaded (-32005) without forwarding. 0 means unbounded.
  int ShardWindow = 16;
  bool Verbose = false;
};

/// The front-end. Construct with the shard endpoints, then init() to build
/// the shard map; handleLine()/serveStream()/serveSocket() mirror the
/// VegaServer transport surface.
class VegaRouter {
public:
  VegaRouter(std::vector<std::unique_ptr<ShardEndpoint>> Shards,
             RouterOptions Options);
  ~VegaRouter();

  VegaRouter(const VegaRouter &) = delete;
  VegaRouter &operator=(const VegaRouter &) = delete;

  /// Queries every shard's `info` and partitions the union of their
  /// targets round-robin into the shard map. Unavailable when a shard
  /// cannot be reached, FailedPrecondition when a shard reports no
  /// targets.
  Status init();

  /// Answers one raw request line (thread-safe; transports share it).
  std::string handleLine(const std::string &Line);

  /// NDJSON loop over a stream pair; returns after EOF or shutdown.
  Status serveStream(std::istream &In, std::ostream &Out);
  /// NDJSON loop over an AF_UNIX socket; returns after shutdown.
  Status serveSocket(const std::string &Path);

  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_relaxed);
  }

  size_t shardCount() const { return Shards.size(); }
  /// target -> owning shard index. Valid after init().
  const std::map<std::string, size_t> &shardMap() const { return ShardMap; }
  /// Lines forwarded to shard \p Shard since startup (test/telemetry hook).
  uint64_t forwardCount(size_t Shard) const;

private:
  struct ShardState {
    std::unique_ptr<ShardEndpoint> Endpoint;
    std::vector<std::string> Targets; ///< owned targets, sorted
    std::atomic<uint64_t> InFlight{0};
    std::atomic<uint64_t> Forwarded{0};
  };

  /// Forwards \p Line to \p Shard under the in-flight window; the typed
  /// Overloaded rejection and transport failures become local error
  /// responses carrying \p Id.
  std::string forwardLine(ShardState &Shard, const std::string &Line,
                          const Json &Id);
  Json handleInfo();
  Json handleStats();
  std::string handleShutdown(const Json &Id, const std::string &Line);

  std::vector<std::unique_ptr<ShardState>> Shards;
  RouterOptions Options;
  std::map<std::string, size_t> ShardMap;
  std::atomic<bool> Shutdown{false};
  std::chrono::steady_clock::time_point StartTime;
};

} // namespace serve
} // namespace vega

#endif // VEGA_SERVE_ROUTER_H
