file(REMOVE_RECURSE
  "CMakeFiles/vega_model.dir/Autograd.cpp.o"
  "CMakeFiles/vega_model.dir/Autograd.cpp.o.d"
  "CMakeFiles/vega_model.dir/CodeBE.cpp.o"
  "CMakeFiles/vega_model.dir/CodeBE.cpp.o.d"
  "CMakeFiles/vega_model.dir/Vocab.cpp.o"
  "CMakeFiles/vega_model.dir/Vocab.cpp.o.d"
  "libvega_model.a"
  "libvega_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
