file(REMOVE_RECURSE
  "CMakeFiles/fig10_backend_performance.dir/fig10_backend_performance.cpp.o"
  "CMakeFiles/fig10_backend_performance.dir/fig10_backend_performance.cpp.o.d"
  "fig10_backend_performance"
  "fig10_backend_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_backend_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
