file(REMOVE_RECURSE
  "libvega_eval.a"
)
