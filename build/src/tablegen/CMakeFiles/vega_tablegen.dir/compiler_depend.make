# Empty compiler generated dependencies file for vega_tablegen.
# This may be replaced when dependencies are built.
