//===- feature/FeatureSelector.cpp - Algorithm 1 -----------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "feature/FeatureSelector.h"

#include "corpus/SynthFramework.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace vega;

const BoolProperty *TemplateFeatures::findBool(const std::string &Name) const {
  for (const BoolProperty &P : BoolProps)
    if (P.Name == Name)
      return &P;
  return nullptr;
}

FeatureSelector::FeatureSelector(const VirtualFileSystem &VFS,
                                 const std::vector<std::string> &TargetNames)
    : Targets(TargetNames) {
  for (const std::string &Dir : llvmDirs())
    LLVMIndex.addDirectory(VFS, Dir);

  // PropList = class names ∪ enum names ∪ field/global names in LLVMDIRs
  // (Algorithm 1 line 5).
  for (const std::string &C : LLVMIndex.classNames())
    PropList.insert(C);
  for (const DescEnum &E : LLVMIndex.enums())
    PropList.insert(E.Name);
  for (const DescAssignment &A : LLVMIndex.assignments())
    PropList.insert(A.Field);

  for (const std::string &Target : Targets) {
    DescriptionIndex Index;
    // A target's TGTDIRs include its lib/Target tree and its ELFRelocs
    // .def file (paper §2); we restrict the ELFRelocs scan to the target's
    // own file so one target's relocations don't leak into another's.
    Index.addDirectory(VFS, "lib/Target/" + Target);
    if (auto Def = VFS.getFile("llvm/BinaryFormat/ELFRelocs/" + Target +
                               ".def"))
      Index.addFile("llvm/BinaryFormat/ELFRelocs/" + Target + ".def", *Def);
    TargetIndexes.emplace(Target, std::move(Index));
  }
}

const DescriptionIndex *
FeatureSelector::targetIndex(const std::string &Target) const {
  auto It = TargetIndexes.find(Target);
  return It == TargetIndexes.end() ? nullptr : &It->second;
}

namespace {

/// Sentinel enum members carry no target value (LastTargetFixupKind,
/// NumTargetFixupKinds, FIRST_NUMBER, ...).
bool isSentinelMember(const std::string &Member) {
  return Member.rfind("Last", 0) == 0 || Member.rfind("Num", 0) == 0 ||
         Member.rfind("FIRST", 0) == 0 || Member.rfind("First", 0) == 0;
}

/// Local names (parameters and declared variables) are never properties
/// (Algorithm 1 requires globals for the partial-match cases).
std::set<std::string> collectLocalNames(const FunctionTemplate &FT) {
  std::set<std::string> Locals;
  std::vector<const TemplateRow *> Rows = FT.rows();
  for (const TemplateRow *Row : Rows) {
    if (Row->Kind == StmtKind::FunctionDef) {
      // Parameters: identifiers immediately before ',' or ')'.
      const auto &Toks = Row->Tokens;
      for (size_t I = 0; I + 1 < Toks.size(); ++I)
        if (Toks[I].Kind == TokenKind::Identifier &&
            (Toks[I + 1].isPunct(",") || Toks[I + 1].isPunct(")")))
          Locals.insert(Toks[I].Text);
      continue;
    }
    if (Row->Kind == StmtKind::Decl) {
      // Declared name: the identifier immediately before '='.
      const auto &Toks = Row->Tokens;
      for (size_t I = 0; I + 1 < Toks.size(); ++I)
        if (Toks[I].Kind == TokenKind::Identifier && Toks[I + 1].isPunct("="))
          Locals.insert(Toks[I].Text);
    }
  }
  return Locals;
}

} // namespace

std::string
FeatureSelector::classifyFiller(const Token &Filler, const std::string &Target,
                                const std::vector<Token> &Context) const {
  const DescriptionIndex *Index = targetIndex(Target);
  if (!Index)
    return "";

  auto CorrelatedEnumProp = [&](const DescEnum &E) -> std::string {
    if (PropList.count(E.Name))
      return E.Name;
    for (const std::string &Ref : E.InitRefs) {
      if (const DescEnum *Framework = LLVMIndex.enumOfMember(Ref))
        return Framework->Name;
      if (LLVMIndex.enumNamed(Ref))
        return Ref;
    }
    return "";
  };

  // Rule 1: a member of a TGTDIRs enum that correlates with an LLVMDIRs
  // property (Algorithm 1 line 29).
  if (Filler.Kind == TokenKind::Identifier) {
    if (const DescEnum *E = Index->enumOfMember(Filler.Text)) {
      std::string Prop = CorrelatedEnumProp(*E);
      if (!Prop.empty())
        return Prop;
    }
  }

  // Rule 1b: string-literal fillers may embed scoped enum members
  // ("RISCVISD::CALL").
  if (Filler.Kind == TokenKind::StringLiteral) {
    std::string Inner = Filler.Text;
    if (Inner.size() >= 2)
      Inner = Inner.substr(1, Inner.size() - 2);
    for (const std::string &Piece : splitString(Inner, ':', false)) {
      if (Piece.empty())
        continue;
      if (const DescEnum *E = Index->enumOfMember(Piece)) {
        std::string Prop = CorrelatedEnumProp(*E);
        if (!Prop.empty())
          return Prop;
      }
    }
  }

  // Rule 2: the exact RHS of an assignment "tok' = filler" (line 29's
  // assignment form). Candidates are scored by context affinity.
  std::string FillerText = Filler.Text;
  if (Filler.Kind == TokenKind::StringLiteral && FillerText.size() >= 2)
    FillerText = FillerText.substr(1, FillerText.size() - 2);
  std::vector<const DescAssignment *> Candidates;
  for (const DescAssignment &A : Index->assignments())
    if (A.Value == FillerText && PropList.count(A.Field))
      Candidates.push_back(&A);
  if (!Candidates.empty()) {
    const DescAssignment *Best = Candidates.front();
    int BestScore = -1;
    for (const DescAssignment *A : Candidates) {
      int Score = 0;
      for (const Token &C : Context)
        if (C.Kind == TokenKind::Identifier &&
            sharesSignificantStem(A->Field, C.Text, 4))
          Score += 1;
      if (Score > BestScore) {
        Best = A;
        BestScore = Score;
      }
    }
    return Best->Field;
  }

  // Rule 3: a record name whose TableGen class is an LLVMDIRs property
  // ("def ADDrr : Instruction" makes ADDrr a value of Instruction).
  if (Filler.Kind == TokenKind::Identifier) {
    for (const DescRecord &R : Index->records())
      if (R.Name == Filler.Text && PropList.count(R.ParentClass))
        return R.ParentClass;
  }

  // Rule 4: partial match against an assignment RHS (line 33): the filler
  // and the value share a significant stem ("ARMELFObjectWriter" vs
  // Name="ARM").
  {
    const DescAssignment *Best = nullptr;
    int BestScore = -1;
    for (const DescAssignment &A : Index->assignments()) {
      if (!PropList.count(A.Field) || A.Value.empty())
        continue;
      if (!partiallyMatches(FillerText, A.Value) &&
          !sharesSignificantStem(FillerText, A.Value))
        continue;
      int Score = 0;
      for (const Token &C : Context)
        if (C.Kind == TokenKind::Identifier &&
            sharesSignificantStem(A.Field, C.Text, 4))
          Score += 1;
      // Prefer longer value overlap: exact prefix match beats stem share.
      if (FillerText.rfind(A.Value, 0) == 0)
        Score += 2;
      if (Score > BestScore) {
        Best = &A;
        BestScore = Score;
      }
    }
    if (Best)
      return Best->Field;
  }
  return "";
}

TemplateFeatures FeatureSelector::analyze(const FunctionTemplate &FT) const {
  obs::Span S("stage1.analyze_features", "stage1");
  S.arg("interface", FT.InterfaceName);
  TemplateFeatures Features;
  std::set<std::string> Locals = collectLocalNames(FT);
  std::set<std::string> SeenProps;

  // ---- Target-independent properties over common code (lines 8-24) ----
  std::vector<const TemplateRow *> Rows = FT.rows();
  std::set<std::string> ExaminedTokens;
  for (const TemplateRow *Row : Rows) {
    for (const Token &Tok : Row->Tokens) {
      if (Tok.Kind != TokenKind::Identifier)
        continue;
      if (ExaminedTokens.count(Tok.Text))
        continue;
      ExaminedTokens.insert(Tok.Text);
      // Locals and parameters cannot be properties themselves (cases 1 and
      // 3), but may still reveal one through partial matching (case 2 —
      // the paper's IsPCRel → OperandType example).
      bool IsLocal = Locals.count(Tok.Text) != 0;

      // Resolve per target; classification (updatable or constant) first.
      std::string PropName;
      std::map<std::string, bool> Value;
      std::map<std::string, std::string> UpdateSite;
      bool Updatable = false;
      for (const std::string &Target : Targets) {
        const DescriptionIndex *Index = targetIndex(Target);
        if (!Index)
          continue;
        // Case 1: token occurs in TGTDIRs and is a PropList name.
        if (!IsLocal && PropList.count(Tok.Text) &&
            Index->containsToken(Tok.Text)) {
          PropName = Tok.Text;
          Value[Target] = true;
          UpdateSite[Target] = Index->filesContaining(Tok.Text).front();
          Updatable = true;
          continue;
        }
        // Case 2: partial match against an assignment RHS in TGTDIRs.
        for (const DescAssignment &A : Index->assignments()) {
          if (!PropList.count(A.Field) || A.Value.empty())
            continue;
          if (!sharesSignificantStem(Tok.Text, A.Value))
            continue;
          PropName = A.Field;
          Value[Target] = true;
          UpdateSite[Target] = A.Path;
          Updatable = true;
          break;
        }
      }
      // Case 3: declared in LLVMDIRs only — a constant framework property.
      if (PropName.empty() && !IsLocal && PropList.count(Tok.Text))
        PropName = Tok.Text;
      if (PropName.empty() || SeenProps.count(PropName))
        continue;
      SeenProps.insert(PropName);

      BoolProperty Prop;
      Prop.Name = PropName;
      Prop.Updatable = Updatable;
      const auto &Files = LLVMIndex.filesContaining(PropName);
      if (!Files.empty())
        Prop.IdentifiedSite = Files.front();
      for (const std::string &Target : Targets) {
        auto It = Value.find(Target);
        bool V = It != Value.end() ? It->second : !Updatable;
        Prop.ValuePerTarget[Target] = V;
        auto SIt = UpdateSite.find(Target);
        Prop.UpdateSitePerTarget[Target] =
            SIt != UpdateSite.end() ? SIt->second : std::string();
      }
      Features.BoolProps.push_back(std::move(Prop));
    }
  }

  // ---- Target-dependent properties per placeholder (lines 25-40) ----
  for (const TemplateRow *Row : Rows) {
    size_t SlotCount = Row->placeholderCount();
    if (SlotCount == 0)
      continue;
    std::vector<SlotProperty> Slots(SlotCount);
    // Build slot context: this row's tokens plus the definition row's.
    std::vector<Token> Context = Row->Tokens;
    if (FT.Definition)
      Context.insert(Context.end(), FT.Definition->Tokens.begin(),
                     FT.Definition->Tokens.end());
    for (size_t SlotIdx = 0; SlotIdx < SlotCount; ++SlotIdx) {
      // Use training instances' fillers to discover the property.
      for (const auto &[Target, Instances] : Row->PerTarget) {
        if (!Slots[SlotIdx].Name.empty())
          break;
        for (const auto &Inst : Instances) {
          if (SlotIdx >= Inst.SlotFillers.size())
            continue;
          for (const Token &Filler : Inst.SlotFillers[SlotIdx]) {
            if (Filler.Kind == TokenKind::Punct ||
                Filler.Kind == TokenKind::Keyword)
              continue;
            std::string Prop = classifyFiller(Filler, Target, Context);
            if (!Prop.empty()) {
              Slots[SlotIdx].Name = Prop;
              const auto &Files = LLVMIndex.filesContaining(Prop);
              if (!Files.empty())
                Slots[SlotIdx].IdentifiedSite = Files.front();
              break;
            }
          }
          if (!Slots[SlotIdx].Name.empty())
            break;
        }
      }
    }
    Features.RowSlots[Row->Index] = std::move(Slots);
  }
  return Features;
}

void FeatureSelector::seedHarvestCache(const std::string &Property,
                                       const std::string &Target,
                                       std::vector<std::string> Values) const {
  std::string Key = Property + '\0' + Target;
  std::lock_guard<std::mutex> Lock(HarvestMu);
  HarvestCache[Key] = std::move(Values);
}

std::vector<FeatureSelector::HarvestEntry>
FeatureSelector::harvestCacheSnapshot() const {
  std::lock_guard<std::mutex> Lock(HarvestMu);
  std::vector<HarvestEntry> Entries;
  Entries.reserve(HarvestCache.size());
  for (const auto &[Key, Values] : HarvestCache) {
    size_t Sep = Key.find('\0');
    Entries.push_back({Key.substr(0, Sep), Key.substr(Sep + 1), Values});
  }
  return Entries;
}

std::vector<std::string>
FeatureSelector::harvestValues(const std::string &Property,
                               const std::string &Target) const {
  obs::MetricsRegistry::instance().addCounter("feature.harvest_calls");
  std::string Key = Property + '\0' + Target;
  {
    std::lock_guard<std::mutex> Lock(HarvestMu);
    auto It = HarvestCache.find(Key);
    if (It != HarvestCache.end())
      return It->second;
  }
  std::vector<std::string> Values;
  std::set<std::string> Seen;
  auto Add = [&](const std::string &V) {
    if (!V.empty() && Seen.insert(V).second)
      Values.push_back(V);
  };
  auto Memoize = [&]() -> std::vector<std::string> {
    std::lock_guard<std::mutex> Lock(HarvestMu);
    return HarvestCache.emplace(std::move(Key), std::move(Values))
        .first->second;
  };
  const DescriptionIndex *Index = targetIndex(Target);
  if (!Index || Property.empty())
    return Memoize();

  // Enums named after the property, in the target's TGTDIRs.
  for (const DescEnum &E : Index->enums()) {
    if (E.Name == Property) {
      for (const std::string &M : E.Members)
        if (!isSentinelMember(M))
          Add(M);
      continue;
    }
    // Enums correlated with the property through initializer references
    // (Fixups = FirstTargetFixupKind → MCFixupKind).
    for (const std::string &Ref : E.InitRefs) {
      const DescEnum *Framework = LLVMIndex.enumOfMember(Ref);
      if ((Framework && Framework->Name == Property) || Ref == Property) {
        for (const std::string &M : E.Members)
          if (!isSentinelMember(M))
            Add(M);
        break;
      }
    }
  }
  // Records of the property's TableGen class.
  for (const DescRecord &R : Index->records())
    if (R.ParentClass == Property)
      Add(R.Name);
  // Assignment values of the property's field.
  for (const DescAssignment &A : Index->assignments())
    if (A.Field == Property)
      Add(A.Value);
  return Memoize();
}
