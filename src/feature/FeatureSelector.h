//===- feature/FeatureSelector.h - Algorithm 1 -------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Feature selection (Algorithm 1 of the paper): discovers Boolean
/// target-independent properties for a template's common code and string
/// target-dependent properties for its placeholders, each with an identified
/// site (in LLVMDIRs) and per-target update sites (in TGTDIRs). Also
/// harvests TgtValSet — a property's candidate values for one target — used
/// both in Eq. (1) confidence scores and in target-specific generation.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_FEATURE_FEATURESELECTOR_H
#define VEGA_FEATURE_FEATURESELECTOR_H

#include "tablegen/DescriptionReader.h"
#include "templatize/FunctionTemplate.h"

#include <mutex>
#include <set>

namespace vega {

/// A Boolean target-independent property (paper Fig. 3(b)).
struct BoolProperty {
  std::string Name;
  std::string IdentifiedSite; ///< where it is declared in LLVMDIRs
  /// True when some target updates it in TGTDIRs; constant-true framework
  /// names (e.g. MCSymbolRefExpr) are not updatable.
  bool Updatable = false;
  std::map<std::string, bool> ValuePerTarget;
  std::map<std::string, std::string> UpdateSitePerTarget; ///< "" = NULL
};

/// A string target-dependent property attached to one placeholder slot
/// (paper Fig. 3(c)).
struct SlotProperty {
  std::string Name;           ///< e.g. "MCFixupKind", "Name"; "" = unresolved
  std::string IdentifiedSite; ///< in LLVMDIRs ("" when unresolved)
};

/// Features of one function template.
struct TemplateFeatures {
  /// Ordered Boolean properties (the V_k prefix layout).
  std::vector<BoolProperty> BoolProps;
  /// Row index → per-placeholder slot property.
  std::map<int, std::vector<SlotProperty>> RowSlots;

  /// Lookup of a Boolean property by name; nullptr when absent.
  const BoolProperty *findBool(const std::string &Name) const;
};

/// Algorithm 1 over the corpus file tree.
class FeatureSelector {
public:
  /// Indexes LLVMDIRs and the TGTDIRs of every target in \p TargetNames
  /// (training and evaluation targets alike — a new target's description
  /// files are always available, per the paper's premise).
  FeatureSelector(const VirtualFileSystem &VFS,
                  const std::vector<std::string> &TargetNames);

  /// Runs feature selection for one function template, resolving per-target
  /// values for every target known to this selector.
  TemplateFeatures analyze(const FunctionTemplate &FT) const;

  /// TgtValSet: candidate values of \p Property for \p Target, harvested
  /// from the target's description files. Sentinel enum members
  /// (Last*/Num*/FIRST*) are filtered. Results are memoized — the
  /// description indexes are immutable after construction, so a
  /// (property, target) pair always harvests the same set; Stage-3
  /// generation asks for the same few properties hundreds of times.
  /// Thread-safe (generation workers share the selector).
  std::vector<std::string> harvestValues(const std::string &Property,
                                         const std::string &Target) const;

  /// Pre-populates the harvestValues memo for one (property, target) pair —
  /// used when restoring a session checkpoint, so generation replays the
  /// harvests recorded at build time instead of re-deriving them. A seeded
  /// entry wins over lazy recomputation. Thread-safe.
  void seedHarvestCache(const std::string &Property, const std::string &Target,
                        std::vector<std::string> Values) const;

  /// A copy of the harvestValues memo as (property, target, values) tuples —
  /// what a session checkpoint records so a loaded session can
  /// seedHarvestCache() them back. Thread-safe.
  struct HarvestEntry {
    std::string Property;
    std::string Target;
    std::vector<std::string> Values;
  };
  std::vector<HarvestEntry> harvestCacheSnapshot() const;

  /// The PropList (PropCandidateSet of LLVMDIRs): class names, enum names,
  /// and field/global names.
  const std::set<std::string> &propList() const { return PropList; }

  /// The description index of one target's TGTDIRs (nullptr if unknown).
  const DescriptionIndex *targetIndex(const std::string &Target) const;

  /// The framework (LLVMDIRs) index.
  const DescriptionIndex &frameworkIndex() const { return LLVMIndex; }

  /// Resolves the target-dependent property of a placeholder filler token
  /// \p Filler observed on \p Target, using \p Context tokens for
  /// disambiguation. Returns the property name ("" when unresolved).
  std::string classifyFiller(const Token &Filler, const std::string &Target,
                             const std::vector<Token> &Context) const;

private:
  DescriptionIndex LLVMIndex;
  std::set<std::string> PropList;
  std::map<std::string, DescriptionIndex> TargetIndexes;
  std::vector<std::string> Targets;
  /// harvestValues memo: "property\0target" → harvested set.
  mutable std::mutex HarvestMu;
  mutable std::map<std::string, std::vector<std::string>> HarvestCache;
};

} // namespace vega

#endif // VEGA_FEATURE_FEATURESELECTOR_H
