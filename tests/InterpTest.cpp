//===- tests/InterpTest.cpp - vega_interp unit tests ----------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "ast/Parser.h"

#include <gtest/gtest.h>

using namespace vega;

namespace {

ExecResult runSource(const char *Src, const Environment &Env) {
  auto Fn = parseFunction(Src);
  EXPECT_TRUE(static_cast<bool>(Fn)) << Fn.getError();
  Interpreter Interp;
  return Interp.run(*Fn, Env);
}

} // namespace

TEST(Interp, ReturnsIntegerArithmetic) {
  ExecResult R = runSource("int f() {\n return 2 + 3 * 4 - 1;\n}", {});
  ASSERT_EQ(R.St, ExecResult::Status::Ok);
  EXPECT_EQ(R.Return, Value::integer(13));
}

TEST(Interp, ParenthesesAndUnary) {
  ExecResult R = runSource("int f() {\n return -(2 + 3) * 2;\n}", {});
  EXPECT_EQ(R.Return, Value::integer(-10));
  R = runSource("int f() {\n return !0;\n}", {});
  EXPECT_EQ(R.Return, Value::boolean(true));
}

TEST(Interp, VariableBindingAndAssignment) {
  ExecResult R = runSource(
      "int f() {\n int x = 5;\n x = x + 2;\n return x;\n}", {});
  EXPECT_EQ(R.Return, Value::integer(7));
}

TEST(Interp, ParameterBindings) {
  Environment Env;
  Env.bind("Imm", Value::integer(100));
  ExecResult R = runSource("bool f(int Imm) {\n return Imm > 50;\n}", Env);
  EXPECT_EQ(R.Return, Value::boolean(true));
}

TEST(Interp, IfElseChains) {
  const char *Src = R"(
int f(int x) {
  if (x == 1) {
    return 10;
  } else if (x == 2) {
    return 20;
  } else {
    return 30;
  }
}
)";
  for (auto [In, Out] : std::vector<std::pair<int, int>>{
           {1, 10}, {2, 20}, {7, 30}}) {
    Environment Env;
    Env.bind("x", Value::integer(In));
    EXPECT_EQ(runSource(Src, Env).Return, Value::integer(Out));
  }
}

TEST(Interp, SwitchMatchesSymbols) {
  const char *Src = R"(
unsigned f() {
  unsigned Kind = Fixup.getTargetKind();
  switch (Kind) {
  case ARM::fixup_arm_movt_hi16:
    return ELF::R_ARM_MOVT_ABS;
  case FK_Data_4:
    return ELF::R_ARM_ABS32;
  default:
    report_fatal_error("invalid fixup kind");
  }
}
)";
  Environment Env;
  Env.bindCall("Fixup.getTargetKind",
               Value::symbol("ARM::fixup_arm_movt_hi16"));
  ExecResult R = runSource(Src, Env);
  ASSERT_EQ(R.St, ExecResult::Status::Ok);
  EXPECT_EQ(R.Return, Value::symbol("ELF::R_ARM_MOVT_ABS"));

  Environment Env2;
  Env2.bindCall("Fixup.getTargetKind", Value::symbol("FK_Data_4"));
  EXPECT_EQ(runSource(Src, Env2).Return, Value::symbol("ELF::R_ARM_ABS32"));

  Environment Env3;
  Env3.bindCall("Fixup.getTargetKind", Value::symbol("something_else"));
  ExecResult R3 = runSource(Src, Env3);
  EXPECT_EQ(R3.St, ExecResult::Status::Trap);
  EXPECT_EQ(R3.Message, "invalid fixup kind");
}

TEST(Interp, SwitchFallthroughAndBreak) {
  const char *Src = R"(
int f(int x) {
  int acc = 0;
  switch (x) {
  case 1:
    acc = acc + 1;
  case 2:
    acc = acc + 2;
    break;
  case 3:
    acc = acc + 4;
  }
  return acc;
}
)";
  for (auto [In, Out] : std::vector<std::pair<int, int>>{
           {1, 3}, {2, 2}, {3, 4}, {9, 0}}) {
    Environment Env;
    Env.bind("x", Value::integer(In));
    EXPECT_EQ(runSource(Src, Env).Return, Value::integer(Out)) << In;
  }
}

TEST(Interp, EffectsAreTraced) {
  const char *Src = R"(
void f() {
  adjustStackPointer(SP, -16);
  copyRegister(FP, SP);
}
)";
  ExecResult R = runSource(Src, {});
  ASSERT_EQ(R.St, ExecResult::Status::Ok);
  ASSERT_EQ(R.Trace.size(), 2u);
  EXPECT_EQ(R.Trace[0], "adjustStackPointer(SP, -16)");
  EXPECT_EQ(R.Trace[1], "copyRegister(FP, SP)");
}

TEST(Interp, BuiltinAlignToAndIsIntN) {
  ExecResult R = runSource("int f() {\n return alignTo(13, 8);\n}", {});
  EXPECT_EQ(R.Return, Value::integer(16));
  R = runSource("bool f() {\n return isIntN(12, 2047);\n}", {});
  EXPECT_EQ(R.Return, Value::boolean(true));
  R = runSource("bool f() {\n return isIntN(12, 2048);\n}", {});
  EXPECT_EQ(R.Return, Value::boolean(false));
  R = runSource("bool f() {\n return isIntN(12, -2048);\n}", {});
  EXPECT_EQ(R.Return, Value::boolean(true));
}

TEST(Interp, MarkReservedAccumulatesSymbolically) {
  const char *Src = R"(
int f() {
  int Reserved = 0;
  Reserved = markReserved(Reserved, RISCV::X2);
  Reserved = markReserved(Reserved, RISCV::X1);
  return Reserved;
}
)";
  ExecResult R = runSource(Src, {});
  EXPECT_EQ(R.Return, Value::symbol("0|RISCV::X2|RISCV::X1"));
}

TEST(Interp, OrdinalsEnableRelationalSymbols) {
  const char *Src = R"(
bool f(int Kind) {
  if (Kind < FirstTargetFixupKind) {
    return true;
  }
  return false;
}
)";
  Environment Env;
  Env.bind("Kind", Value::symbol("FK_Data_4"));
  Env.setOrdinal("FK_Data_4", 3);
  Env.setOrdinal("FirstTargetFixupKind", 128);
  EXPECT_EQ(runSource(Src, Env).Return, Value::boolean(true));

  Environment Env2;
  Env2.bind("Kind", Value::symbol("fixup_x"));
  Env2.setOrdinal("fixup_x", 130);
  Env2.setOrdinal("FirstTargetFixupKind", 128);
  EXPECT_EQ(runSource(Src, Env2).Return, Value::boolean(false));
}

TEST(Interp, MissingOrdinalIsAnError) {
  Environment Env;
  Env.bind("Kind", Value::symbol("mystery"));
  ExecResult R = runSource("bool f(int Kind) {\n return Kind < 5;\n}", Env);
  EXPECT_EQ(R.St, ExecResult::Status::Error);
}

TEST(Interp, DynamicIntrinsics) {
  Environment Env;
  Env.setIntrinsic([](const std::string &Callee,
                      const std::vector<Value> &Args)
                       -> std::optional<Value> {
    if (Callee == "twice" && Args.size() == 1 && Args[0].isInt())
      return Value::integer(Args[0].IntV * 2);
    return std::nullopt;
  });
  ExecResult R = runSource("int f() {\n return twice(21);\n}", Env);
  EXPECT_EQ(R.Return, Value::integer(42));
}

TEST(Interp, StringLiteralComparisons) {
  const char *Src = R"(
bool f(int IDVal) {
  if (isDirective(IDVal, ".word")) {
    return true;
  }
  return false;
}
)";
  Environment Env;
  Env.bind("IDVal", Value::symbol(".word"));
  EXPECT_EQ(runSource(Src, Env).Return, Value::boolean(true));
  Environment Env2;
  Env2.bind("IDVal", Value::symbol(".long"));
  EXPECT_EQ(runSource(Src, Env2).Return, Value::boolean(false));
}

TEST(Interp, StepBudgetStopsRunaways) {
  // A switch over a constant looping forever is not constructible in this
  // subset, but a huge statement list is bounded by the budget.
  std::string Src = "int f() {\n";
  for (int I = 0; I < 100; ++I)
    Src += "  foo" + std::to_string(I) + "(1);\n";
  Src += "  return 0;\n}";
  auto Fn = parseFunction(Src);
  ASSERT_TRUE(static_cast<bool>(Fn));
  Interpreter Interp;
  ExecResult R = Interp.run(*Fn, {}, /*StepBudget=*/10);
  EXPECT_EQ(R.St, ExecResult::Status::Error);
}

TEST(Interp, EquivalenceComparesTraces) {
  ExecResult A, B;
  A.St = B.St = ExecResult::Status::Ok;
  A.Return = B.Return = Value::integer(1);
  A.Trace = {"x(1)"};
  B.Trace = {"x(2)"};
  EXPECT_FALSE(A.equivalent(B));
  B.Trace = {"x(1)"};
  EXPECT_TRUE(A.equivalent(B));
}

TEST(Interp, EmitErrorTracesAndReturnsTrue) {
  ExecResult R = runSource(
      "bool f() {\n return emitError(\"bad operand\");\n}", {});
  ASSERT_EQ(R.St, ExecResult::Status::Ok);
  EXPECT_EQ(R.Return, Value::boolean(true));
  ASSERT_EQ(R.Trace.size(), 1u);
  EXPECT_EQ(R.Trace[0], "error: bad operand");
}
