# Empty dependencies file for evalspec_test.
# This may be replaced when dependencies are built.
