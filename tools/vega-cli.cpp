//===- tools/vega-cli.cpp - The VEGA command-line driver ------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// The command-line face of the reproduction:
///
///   vega-cli targets                      list the corpus targets
///   vega-cli groups                       list function groups and sizes
///   vega-cli template <iface>             print a function template
///   vega-cli features <iface>             print Algorithm-1 properties
///   vega-cli golden <target> <iface>      print a golden implementation
///   vega-cli harvest <prop> <target>      print a TgtValSet
///   vega-cli build [epochs]               train and save a .vega session
///   vega-cli train                        train with an explicit schedule
///                                         (--epochs/--batch-size/--lr/--seed/
///                                         --train-jobs) and save a session
///   vega-cli inspect                      summarize a .vega session artifact
///   vega-cli generate <target> [epochs]   emit a backend
///   vega-cli evaluate <target> [epochs]   generate + pass@1 report
///   vega-cli repair <target> [epochs]     generate + beam-search auto-repair
///                                         (--beam/--rounds; report per round)
///   vega-cli flywheel <target>...         self-training repair flywheel:
///                                         generate + repair + harvest +
///                                         fine-tune generations
///                                         (--generations/--ft-epochs/--beam/
///                                         --rounds/--oracle/
///                                         --harvest-negatives/--out-dir)
///   vega-cli forkflow <target>            evaluate the MIPS fork baseline
///   vega-cli stats --socket=<path>        live stats of a running vega-serve
///
/// With --session=<file.vega>, generate/evaluate load the saved session and
/// run Stage 3 directly — no template building, no training. Without it they
/// build a session in-process (weights cached in vega_cli_model.bin).
/// Failures map to exit codes via vega::Status (see README).
///
/// Job-count precedence for Stage-2 training: --train-jobs beats --jobs
/// beats VEGA_JOBS beats hardware concurrency. Every choice trains the
/// same bits (README "Training").
///
//===----------------------------------------------------------------------===//

#include "core/Checkpoint.h"
#include "core/VegaSession.h"
#include "eval/EffortModel.h"
#include "eval/Harness.h"
#include "flywheel/Flywheel.h"
#include "forkflow/ForkFlow.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "repair/RepairEngine.h"
#include "obs/Trace.h"
#include "serve/Protocol.h"
#include "support/ArgParse.h"
#include "support/TextTable.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace vega;

namespace {

/// Global flag state shared by the command handlers.
struct CliOptions {
  int Jobs = 0;
  int TrainJobs = 0;
  bool JsonOut = false;
  std::string SessionPath;
  Precision Prec = Precision::FP32;
  bool PrefixSharing = true;
  eval::OracleKind Oracle = eval::OracleKind::Text;
};
CliOptions Cli;

/// (primary, classifier) pair the current --oracle selection maps to.
const eval::Oracle &primaryOracle() {
  return Cli.Oracle == eval::OracleKind::Differential
             ? static_cast<const eval::Oracle &>(eval::differentialOracle())
             : eval::textOracle();
}
const eval::Oracle *classifierOracle() {
  return Cli.Oracle == eval::OracleKind::Text ? nullptr
                                              : &eval::differentialOracle();
}

const BackendCorpus &corpus() { return VegaSession::standardCorpus(); }

FeatureSelector &selector() {
  static FeatureSelector *S = [] {
    std::vector<std::string> Names;
    for (const TargetTraits &T : corpus().targets().targets())
      Names.push_back(T.Name);
    return new FeatureSelector(corpus().vfs(), Names);
  }();
  return *S;
}

int cmdTargets() {
  TextTable Table;
  Table.setHeader({"Target", "Role", "Endian", "Bits", "Flags", "Fixups",
                   "Instrs"});
  for (const TargetTraits &T : corpus().targets().targets()) {
    bool Held = false;
    for (const std::string &E : TargetDatabase::evaluationTargetNames())
      if (E == T.Name)
        Held = true;
    std::string Flags;
    if (T.HasVariantKind)
      Flags += "V";
    if (T.HasDelaySlots)
      Flags += "D";
    if (T.HasHardwareLoop)
      Flags += "H";
    if (T.HasSimd)
      Flags += "S";
    if (T.HasCompressed)
      Flags += "C";
    if (T.HasThreadScheduler)
      Flags += "T";
    Table.addRow({T.Name, Held ? "eval" : "train",
                  T.IsBigEndian ? "BE" : "LE", T.Is64Bit ? "64" : "32",
                  Flags.empty() ? "-" : Flags,
                  std::to_string(T.Fixups.size()),
                  std::to_string(T.Instructions.size())});
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}

int cmdGroups() {
  TextTable Table;
  Table.setHeader({"Interface function", "Module", "Members", "Statements"});
  for (const FunctionGroup &G : corpus().trainingGroups()) {
    size_t Stmts = 0;
    for (const BackendFunction *F : G.Members)
      Stmts += F->AST.size();
    Table.addRow({G.InterfaceName, moduleName(G.Module),
                  std::to_string(G.Members.size()), std::to_string(Stmts)});
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}

const FunctionGroup *groupNamed(const std::string &Name) {
  static std::vector<FunctionGroup> Groups = corpus().trainingGroups();
  for (const FunctionGroup &G : Groups)
    if (G.InterfaceName == Name)
      return &G;
  return nullptr;
}

int fail(const Status &St) {
  std::fprintf(stderr, "vega-cli: %s\n", St.toString().c_str());
  return St.toExitCode();
}

int cmdTemplate(const std::string &Iface) {
  const FunctionGroup *G = groupNamed(Iface);
  if (!G)
    return fail(Status::notFound("unknown interface function '" + Iface + "'"));
  FunctionTemplate FT = buildFunctionTemplate(*G);
  std::printf("%s", FT.render().c_str());
  return 0;
}

int cmdFeatures(const std::string &Iface) {
  const FunctionGroup *G = groupNamed(Iface);
  if (!G)
    return fail(Status::notFound("unknown interface function '" + Iface + "'"));
  FunctionTemplate FT = buildFunctionTemplate(*G);
  TemplateFeatures F = selector().analyze(FT);
  std::printf("target-independent properties:\n");
  for (const BoolProperty &P : F.BoolProps)
    std::printf("  %-22s %-12s identified at %s\n", P.Name.c_str(),
                P.Updatable ? "updatable" : "constant",
                P.IdentifiedSite.c_str());
  std::printf("placeholder slots:\n");
  for (const auto &[RowIdx, Slots] : F.RowSlots) {
    std::printf("  row %-3d:", RowIdx);
    for (const SlotProperty &S : Slots)
      std::printf(" [%s]", S.Name.empty() ? "?" : S.Name.c_str());
    std::printf("\n");
  }
  return 0;
}

int cmdGolden(const std::string &Target, const std::string &Iface) {
  const Backend *B = corpus().backend(Target);
  if (!B)
    return fail(Status::notFound("unknown target '" + Target + "'"));
  const BackendFunction *F = B->find(Iface);
  if (!F)
    return fail(Status::notFound(Target + " does not implement " + Iface));
  std::printf("%s", F->AST.render().c_str());
  return 0;
}

int cmdHarvest(const std::string &Prop, const std::string &Target) {
  for (const std::string &V : selector().harvestValues(Prop, Target))
    std::printf("%s\n", V.c_str());
  return 0;
}

/// The process-wide session: loaded from --session when given, otherwise
/// built in-process with the historical vega_cli_model.bin weight cache.
StatusOr<VegaSession *> session(int Epochs) {
  static std::unique_ptr<VegaSession> S;
  if (S)
    return S.get();
  if (!Cli.SessionPath.empty()) {
    StatusOr<std::unique_ptr<VegaSession>> Loaded =
        VegaSession::load(Cli.SessionPath);
    if (!Loaded.isOk())
      return Loaded.status();
    S = std::move(*Loaded);
  } else {
    VegaOptions Opts;
    Opts.Model.Epochs = Epochs;
    Opts.WeightCachePath = "vega_cli_model.bin";
    Opts.Verbose = true;
    Opts.Jobs = Cli.Jobs;
    Opts.TrainJobs = Cli.TrainJobs;
    StatusOr<std::unique_ptr<VegaSession>> Built = VegaSession::build(Opts);
    if (!Built.isOk())
      return Built.status();
    S = std::move(*Built);
  }
  if (Cli.Jobs > 0)
    S->setJobs(Cli.Jobs);
  // Runtime decode knobs apply identically to loaded and built sessions
  // (training always runs fp32; these only shape Stage-3 inference).
  S->setPrecision(Cli.Prec);
  S->setPrefixSharing(Cli.PrefixSharing);
  return S.get();
}

int buildAndSave(const VegaOptions &Opts) {
  StatusOr<std::unique_ptr<VegaSession>> Built = VegaSession::build(Opts);
  if (!Built.isOk())
    return fail(Built.status());
  if (Status St = (*Built)->save(Cli.SessionPath); !St.isOk())
    return fail(St);
  std::printf("session saved to %s\n", Cli.SessionPath.c_str());
  return 0;
}

int cmdBuild(int Epochs) {
  if (Cli.SessionPath.empty())
    return fail(
        Status::invalidArgument("build requires --session=<file.vega>"));
  VegaOptions Opts;
  Opts.Model.Epochs = Epochs;
  Opts.Verbose = true;
  Opts.Jobs = Cli.Jobs;
  Opts.TrainJobs = Cli.TrainJobs;
  return buildAndSave(Opts);
}

/// `train`: the explicit-schedule sibling of `build` — every TrainOptions
/// field is a flag; defaults match what `build` has always done.
int cmdTrain(int Epochs, int BatchSize, double LearningRate,
             unsigned long long Seed) {
  if (Cli.SessionPath.empty())
    return fail(
        Status::invalidArgument("train requires --session=<file.vega>"));
  VegaOptions Opts;
  Opts.Model.Epochs = Epochs;
  Opts.Model.BatchSize = BatchSize;
  Opts.Model.LearningRate = static_cast<float>(LearningRate);
  Opts.Model.Seed = Seed;
  Opts.Verbose = true;
  Opts.Jobs = Cli.Jobs;
  Opts.TrainJobs = Cli.TrainJobs;
  // Out-of-range values flow into TrainOptions::validate() and come back
  // as typed InvalidArgument diagnostics (exit code 2), not silent
  // fall-through.
  return buildAndSave(Opts);
}

int cmdInspect() {
  if (Cli.SessionPath.empty())
    return fail(
        Status::invalidArgument("inspect requires --session=<file.vega>"));
  StatusOr<SessionCheckpoint::Info> Info =
      SessionCheckpoint::inspect(Cli.SessionPath);
  if (!Info.isOk())
    return fail(Info.status());
  if (Cli.JsonOut) {
    Json Doc = Json::object();
    Doc.set("schema", "vega-session-info-1");
    Doc.set("version", static_cast<uint64_t>(Info->Version));
    Doc.set("optionsFingerprint", std::to_string(Info->OptionsFingerprint));
    Doc.set("corpusFingerprint", std::to_string(Info->CorpusFingerprint));
    Doc.set("epochs", Info->Options.Model.Epochs);
    Doc.set("templates", Info->TemplateCount);
    Doc.set("vocab", Info->VocabSize);
    Doc.set("trainPairs", Info->TrainPairs);
    Doc.set("verifyPairs", Info->VerifyPairs);
    Json Sections = Json::array();
    for (const auto &[Tag, Bytes] : Info->Sections) {
      Json S = Json::object();
      S.set("tag", Tag);
      S.set("bytes", Bytes);
      Sections.push(std::move(S));
    }
    Doc.set("sections", std::move(Sections));
    std::printf("%s\n", Doc.dump(2).c_str());
    return 0;
  }
  std::printf("format version:  %u\n", Info->Version);
  std::printf("options:         %d epochs, fingerprint %016llx\n",
              Info->Options.Model.Epochs,
              static_cast<unsigned long long>(Info->OptionsFingerprint));
  std::printf("corpus:          fingerprint %016llx\n",
              static_cast<unsigned long long>(Info->CorpusFingerprint));
  std::printf("templates:       %llu\n",
              static_cast<unsigned long long>(Info->TemplateCount));
  std::printf("vocabulary:      %llu tokens\n",
              static_cast<unsigned long long>(Info->VocabSize));
  std::printf("dataset:         %llu train / %llu verify pairs\n",
              static_cast<unsigned long long>(Info->TrainPairs),
              static_cast<unsigned long long>(Info->VerifyPairs));
  for (const auto &[Tag, Bytes] : Info->Sections)
    std::printf("section %s:    %llu bytes\n", Tag.c_str(),
                static_cast<unsigned long long>(Bytes));
  return 0;
}

int cmdGenerate(const std::string &Target, int Epochs) {
  StatusOr<VegaSession *> S = session(Epochs);
  if (!S.isOk())
    return fail(S.status());
  StatusOr<GeneratedBackend> GB = (*S)->generate(Target);
  if (!GB.isOk())
    return fail(GB.status());
  if (Cli.JsonOut) {
    std::printf("%s\n", serve::backendToJson(*GB).dump(2).c_str());
    return 0;
  }
  for (const GeneratedFunction &F : GB->Functions) {
    if (!F.Emitted)
      continue;
    std::printf("// confidence %.2f [%s]\n%s\n", F.Confidence,
                moduleName(F.Module), F.AST.render().c_str());
  }
  return 0;
}

int cmdEvaluate(const std::string &Target, int Epochs) {
  StatusOr<VegaSession *> S = session(Epochs);
  if (!S.isOk())
    return fail(S.status());
  StatusOr<GeneratedBackend> GB = (*S)->generate(Target);
  if (!GB.isOk())
    return fail(GB.status());
  BackendEval Eval = evaluateBackend(*GB, *corpus().backend(Target),
                                     *corpus().targets().find(Target),
                                     primaryOracle(), classifierOracle());
  if (Cli.JsonOut) {
    std::printf("%s\n", serve::evalToJson(Eval).dump(2).c_str());
    return 0;
  }
  TextTable Table;
  Table.setHeader({"Function", "Module", "Confidence", "pass@1"});
  for (const FunctionEval &F : Eval.Functions)
    Table.addRow({F.InterfaceName, moduleName(F.Module),
                  TextTable::formatDouble(F.Confidence, 2),
                  F.Accurate ? "pass" : (F.Generated ? "FAIL" : "missing")});
  std::printf("%s\n", Table.render().c_str());
  std::printf("oracle: %s\n", Eval.OracleName.c_str());
  std::printf("function accuracy: %s   statement accuracy: %s\n",
              TextTable::formatPercent(Eval.functionAccuracy()).c_str(),
              TextTable::formatPercent(Eval.statementAccuracy()).c_str());
  if (Eval.hasDifferential()) {
    std::printf("differential accuracy: %s   adjusted statement accuracy: "
                "%s\n",
                TextTable::formatPercent(Eval.differentialAccuracy()).c_str(),
                TextTable::formatPercent(Eval.adjustedStatementAccuracy())
                    .c_str());
    std::printf("divergences: Div-Val %s, Div-Trap %s, Div-Eff %s, "
                "Txt-Only %s\n",
                TextTable::formatPercent(Eval.divValRate()).c_str(),
                TextTable::formatPercent(Eval.divTrapRate()).c_str(),
                TextTable::formatPercent(Eval.divEffRate()).c_str(),
                TextTable::formatPercent(Eval.txtOnlyRate()).c_str());
    BackendEval::OracleAgreement A = Eval.agreement();
    std::printf("oracle agreement: both-pass %llu, both-fail %llu, "
                "primary-only %llu, differential-only %llu\n",
                static_cast<unsigned long long>(A.BothPass),
                static_cast<unsigned long long>(A.BothFail),
                static_cast<unsigned long long>(A.PrimaryOnlyPass),
                static_cast<unsigned long long>(A.DifferentialOnlyPass));
  }
  std::printf("estimated repair hours (Developer A model): %.2f\n",
              totalRepairHours(Eval, developerA()));
  return 0;
}

int cmdRepair(const std::string &Target, int Epochs, int BeamWidth,
              int MaxRounds) {
  StatusOr<VegaSession *> S = session(Epochs);
  if (!S.isOk())
    return fail(S.status());
  StatusOr<GeneratedBackend> GB = (*S)->generate(Target);
  if (!GB.isOk())
    return fail(GB.status());
  repair::RepairOptions Opts;
  Opts.BeamWidth = BeamWidth;
  Opts.MaxRounds = MaxRounds;
  Opts.Jobs = Cli.Jobs;
  switch (Cli.Oracle) {
  case eval::OracleKind::Text:
    break; // defaults: text gate, no classifier
  case eval::OracleKind::Differential:
    Opts.OracleImpl = &eval::differentialOracle();
    Opts.Classifier = &eval::differentialOracle();
    break;
  case eval::OracleKind::Both:
    Opts.Classifier = &eval::differentialOracle();
    break;
  }
  repair::RepairEngine Engine((*S)->system(), Opts);
  StatusOr<repair::RepairReport> Report = Engine.repairBackend(*GB);
  if (!Report.isOk())
    return fail(Report.status());
  if (Cli.JsonOut) {
    std::printf("%s\n", serve::repairToJson(*Report).dump(2).c_str());
    return 0;
  }
  TextTable Table;
  Table.setHeader({"Function", "Module", "Repaired", "Round", "Sites",
                   "Tried", "Replaced"});
  for (const repair::FunctionRepair &F : Report->Functions)
    Table.addRow({F.InterfaceName, moduleName(F.Module),
                  F.RepairedPassed ? "yes" : "no",
                  F.RepairedAtRound > 0 ? std::to_string(F.RepairedAtRound)
                                        : "-",
                  std::to_string(F.SitesExamined),
                  std::to_string(F.CandidatesTried),
                  std::to_string(F.StatementsReplaced)});
  std::printf("%s\n", Table.render().c_str());
  std::printf("flagged %llu, repaired %llu (%llu statements, "
              "%llu candidates tried)\n",
              static_cast<unsigned long long>(Report->FunctionsFlagged),
              static_cast<unsigned long long>(Report->FunctionsRepaired),
              static_cast<unsigned long long>(Report->StatementsAutoRepaired),
              static_cast<unsigned long long>(Report->CandidatesTried));
  for (const repair::RoundStats &R : Report->Rounds)
    std::printf("round %d: pass@k %s\n", R.Round,
                TextTable::formatPercent(R.FunctionAccuracy).c_str());
  std::printf(
      "function accuracy: %s -> %s   statement accuracy: %s -> %s\n",
      TextTable::formatPercent(Report->BaselineEval.functionAccuracy())
          .c_str(),
      TextTable::formatPercent(Report->RepairedEval.functionAccuracy())
          .c_str(),
      TextTable::formatPercent(Report->BaselineEval.statementAccuracy())
          .c_str(),
      TextTable::formatPercent(Report->RepairedEval.statementAccuracy())
          .c_str());
  std::printf("estimated repair hours (Developer A model): %.2f -> %.2f\n",
              Report->BaselineHoursA, Report->RepairedHoursA);
  return 0;
}

int cmdFlywheel(int Epochs, flywheel::FlywheelOptions FOpts) {
  if (!Cli.SessionPath.empty())
    return fail(Status::invalidArgument(
        "flywheel fine-tunes over the full training corpus and must build "
        "its session in-process; omit --session"));
  StatusOr<VegaSession *> S = session(Epochs);
  if (!S.isOk())
    return fail(S.status());
  FOpts.Oracle = Cli.Oracle;
  FOpts.Jobs = Cli.Jobs;
  // --train-jobs > --jobs > VEGA_JOBS precedence rides on the session's
  // VegaOptions: fineTuneRound derives its lanes via trainOptions().
  flywheel::FlywheelEngine Engine((*S)->system(), std::move(FOpts));
  StatusOr<flywheel::FlywheelReport> Report = Engine.run();
  if (!Report.isOk())
    return fail(Report.status());
  if (Cli.JsonOut) {
    std::printf("%s\n", flywheel::reportToJson(*Report).dump(2).c_str());
    return 0;
  }
  TextTable Table;
  Table.setHeader({"Gen", "Pass@1", "Greedy", "Reliance", "Harvested",
                   "Added", "Deduped", "Loss", "Accepted"});
  for (const flywheel::GenerationStats &G : Report->Generations)
    Table.addRow(
        {std::to_string(G.Generation),
         TextTable::formatPercent(G.Pass1),
         TextTable::formatPercent(G.GreedyPass1),
         TextTable::formatPercent(G.RepairReliance),
         std::to_string(G.HarvestedPositives + G.HarvestedNegatives),
         std::to_string(G.PairsAdded), std::to_string(G.PairsDeduped),
         G.Generation == 0 ? "-" : TextTable::formatDouble(G.TrainMeanLoss),
         G.Accepted ? "yes" : "no"});
  std::printf("%s\n", Table.render().c_str());
  std::printf("flywheel: %d generation(s) run, %d resumed, %llu pairs "
              "added to the corpus\n",
              Report->GenerationsRun, Report->GenerationsResumed,
              static_cast<unsigned long long>(Report->TotalPairsAdded));
  return 0;
}

int cmdForkflow(const std::string &Target) {
  if (!corpus().targets().find(Target))
    return fail(Status::notFound("unknown target '" + Target + "'"));
  GeneratedBackend FF = forkflowBackend(corpus(), "Mips", Target);
  BackendEval Eval = evaluateBackend(FF, *corpus().backend(Target),
                                     *corpus().targets().find(Target));
  std::printf("fork-flow (from Mips) accuracy for %s: functions %s, "
              "statements %s\n",
              Target.c_str(),
              TextTable::formatPercent(Eval.functionAccuracy()).c_str(),
              TextTable::formatPercent(Eval.statementAccuracy()).c_str());
  return 0;
}

int epochsArg(const std::vector<std::string> &Args, size_t Index,
              int Default) {
  if (Index >= Args.size())
    return Default;
  return std::atoi(Args[Index].c_str());
}

/// One JSON-RPC round trip against a vega-serve AF_UNIX socket: sends
/// \p Request (one line) and returns the daemon's one-line response.
StatusOr<std::string> socketRoundTrip(const std::string &Path,
                                      const std::string &Request) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::unavailable(std::string("cannot create socket: ") +
                               std::strerror(errno));
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Fd);
    return Status::invalidArgument("socket path too long: '" + Path + "'");
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return Status::unavailable("cannot connect to '" + Path +
                               "': " + std::strerror(errno));
  }
  std::string Line = Request + "\n";
  size_t Written = 0;
  while (Written < Line.size()) {
    ssize_t W = ::write(Fd, Line.data() + Written, Line.size() - Written);
    if (W <= 0) {
      ::close(Fd);
      return Status::unavailable("write to '" + Path + "' failed");
    }
    Written += static_cast<size_t>(W);
  }
  std::string Buffer;
  char Chunk[4096];
  size_t Newline;
  while ((Newline = Buffer.find('\n')) == std::string::npos) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0)
      break;
    Buffer.append(Chunk, static_cast<size_t>(N));
  }
  ::close(Fd);
  if (Newline == std::string::npos)
    return Status::unavailable("no response from '" + Path + "'");
  return Buffer.substr(0, Newline);
}

int cmdStats(const std::string &SocketPath) {
  if (SocketPath.empty())
    return fail(Status::invalidArgument(
        "stats needs --socket=<path> of a running vega-serve"));
  StatusOr<std::string> Line = socketRoundTrip(
      SocketPath, "{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"stats\"}");
  if (!Line.isOk())
    return fail(Line.status());
  StatusOr<Json> Response = Json::parse(*Line);
  if (!Response.isOk())
    return fail(Response.status());
  const Json *Result = Response->get("result");
  if (!Result) {
    if (const Json *Error = Response->get("error"))
      return fail(Status::unavailable("daemon error: " +
                                      Error->getString("message")));
    return fail(Status::internal("malformed stats response"));
  }
  if (Cli.JsonOut) {
    std::printf("%s\n", Result->dump(2).c_str());
    return 0;
  }
  std::printf("uptime %.1fs, %.0f in flight, %.0f queued, %.0f requests\n",
              Result->getNumber("uptimeSec"), Result->getNumber("inFlight"),
              Result->getNumber("queueDepth"), Result->getNumber("requests"));
  TextTable Table;
  Table.setHeader({"Metric", "Count", "Mean", "p50", "p95", "p99"});
  if (const Json *Quantiles = Result->get("quantiles"))
    for (const auto &[Name, Q] : Quantiles->fields())
      Table.addRow({Name, TextTable::formatDouble(Q.getNumber("count")),
                    TextTable::formatDouble(Q.getNumber("mean")),
                    TextTable::formatDouble(Q.getNumber("p50")),
                    TextTable::formatDouble(Q.getNumber("p95")),
                    TextTable::formatDouble(Q.getNumber("p99"))});
  std::printf("%s", Table.render().c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  ArgParse Args("vega-cli", "the VEGA reproduction command-line driver");
  Args.addOption("jobs", "N",
                 "Stage-3 generation lanes (default: VEGA_JOBS, else "
                 "hardware concurrency); output is identical for every N");
  Args.addOption("train-jobs", "N",
                 "Stage-2 training lanes (default: --jobs, then VEGA_JOBS, "
                 "then hardware concurrency); weights are identical for "
                 "every N");
  Args.addOption("epochs", "N", "train: epochs (default 8)");
  Args.addOption("batch-size", "N", "train: minibatch size (default 8)");
  Args.addOption("lr", "X", "train: Adam learning rate (default 1e-3)");
  Args.addOption("seed", "N",
                 "train: weight-init & shuffle seed (default 42)");
  Args.addOption("session", "file.vega",
                 "load (generate/evaluate/inspect) or write (build) a "
                 "session artifact");
  Args.addOption("precision", "fp32|int8",
                 "inference precision of the decode logit GEMM (default "
                 "fp32; output is byte-deterministic per precision)");
  Args.addOption("prefix-sharing", "on|off",
                 "decode fast paths reusing shared KV prefixes (default on; "
                 "byte-identical either way)");
  Args.addFlag("json", "emit generate/evaluate/repair/inspect results as JSON");
  Args.addOption("oracle", "text|differential|both",
                 "evaluate/repair: scoring oracle — text (curated regression "
                 "environments, default), differential (seeded randomized "
                 "side-by-side execution), or both (text verdicts with a "
                 "differential divergence census)");
  Args.addOption("beam", "N", "repair: ranked candidates per site (default 4)");
  Args.addOption("rounds", "N", "repair: fixed-point round cap (default 2)");
  Args.addOption("generations", "N",
                 "flywheel: fine-tune generations to run (default 3)");
  Args.addOption("ft-epochs", "N",
                 "flywheel: epochs per fine-tuning round (default 2)");
  Args.addOption("harvest-negatives", "on|off",
                 "flywheel: harvest refuted high-confidence candidates as "
                 "down-weighted hard negatives (default on)");
  Args.addOption("out-dir", "dir",
                 "flywheel: per-generation artifact directory (enables "
                 "resume; omit for an in-memory run)");
  Args.addOption("trace-out", "file", "write a Chrome/Perfetto trace on exit");
  Args.addOption("metrics-out", "file", "write metrics JSON on exit");
  Args.addOption("socket", "path",
                 "stats: AF_UNIX socket of a running vega-serve");
  Args.addOption("log-level", "level",
                 "NDJSON log level on stderr: debug|info|warn|error|off "
                 "(default: $VEGA_LOG or off)");
  Args.addFlag("stats", "print a text metrics summary on exit");
  Args.addCommand("targets", "", "list the corpus targets", 0, 0);
  Args.addCommand("groups", "", "list function groups and sizes", 0, 0);
  Args.addCommand("template", "<iface>", "print a function template", 1, 1);
  Args.addCommand("features", "<iface>", "print Algorithm-1 properties", 1, 1);
  Args.addCommand("golden", "<target> <iface>",
                  "print a golden implementation", 2, 2);
  Args.addCommand("harvest", "<prop> <target>", "print a TgtValSet", 2, 2);
  Args.addCommand("build", "[epochs]",
                  "train and save a session to --session", 0, 1);
  Args.addCommand("train", "",
                  "train with an explicit schedule (--epochs/--batch-size/"
                  "--lr/--seed/--train-jobs) and save to --session", 0, 0);
  Args.addCommand("inspect", "", "summarize the --session artifact", 0, 0);
  Args.addCommand("generate", "<target> [epochs]", "emit a backend", 1, 2);
  Args.addCommand("evaluate", "<target> [epochs]",
                  "generate + pass@1 report", 1, 2);
  Args.addCommand("repair", "<target> [epochs]",
                  "generate + beam-search auto-repair report", 1, 2);
  Args.addCommand("flywheel", "<target>...",
                  "self-training repair flywheel: generate + repair + "
                  "harvest + fine-tune generations (--generations/"
                  "--ft-epochs/--beam/--rounds/--oracle/"
                  "--harvest-negatives/--out-dir)", 1, 8);
  Args.addCommand("forkflow", "<target>",
                  "evaluate the MIPS fork baseline", 1, 1);
  Args.addCommand("stats", "",
                  "query a running vega-serve daemon's live stats "
                  "(--socket; --json for the raw payload)", 0, 0);

  if (Status St = Args.parse(argc, argv); !St.isOk()) {
    std::fprintf(stderr, "vega-cli: %s\n%s", St.toString().c_str(),
                 Args.usage().c_str());
    return St.toExitCode();
  }
  if (Args.command().empty()) {
    std::fprintf(stderr, "%s", Args.usage().c_str());
    return 2;
  }

  Cli.Jobs = Args.getInt("jobs", 0);
  Cli.TrainJobs = Args.getInt("train-jobs", 0);
  Cli.JsonOut = Args.has("json");
  Cli.SessionPath = Args.get("session");
  if (Args.has("precision")) {
    std::optional<Precision> P = parsePrecision(Args.get("precision"));
    if (!P)
      return fail(Status::invalidArgument("unknown --precision '" +
                                          Args.get("precision") +
                                          "' (expected fp32 or int8)"));
    Cli.Prec = *P;
  }
  if (Args.has("prefix-sharing")) {
    const std::string &V = Args.get("prefix-sharing");
    if (V != "on" && V != "off")
      return fail(Status::invalidArgument("unknown --prefix-sharing '" + V +
                                          "' (expected on or off)"));
    Cli.PrefixSharing = V == "on";
  }
  if (Args.has("oracle")) {
    std::optional<eval::OracleKind> Kind =
        eval::parseOracleKind(Args.get("oracle"));
    if (!Kind)
      return fail(Status::invalidArgument(
          "unknown --oracle '" + Args.get("oracle") +
          "' (expected text, differential, or both)"));
    Cli.Oracle = *Kind;
  }

  if (Args.has("trace-out"))
    obs::TraceRecorder::instance().setEnabled(true);
  if (Args.has("metrics-out") || Args.has("stats"))
    obs::MetricsRegistry::instance().setEnabled(true);
  if (Args.has("log-level")) {
    std::optional<obs::LogLevel> Level =
        obs::Logger::parseLevel(Args.get("log-level"));
    if (!Level) {
      std::fprintf(stderr, "vega-cli: unknown log level '%s'\n",
                   Args.get("log-level").c_str());
      return 2;
    }
    obs::Logger::instance().setLevel(*Level);
  }

  const std::string &Cmd = Args.command();
  const std::vector<std::string> &Pos = Args.positionals();
  int Rc = 2;
  if (Cmd == "targets")
    Rc = cmdTargets();
  else if (Cmd == "groups")
    Rc = cmdGroups();
  else if (Cmd == "template")
    Rc = cmdTemplate(Pos[0]);
  else if (Cmd == "features")
    Rc = cmdFeatures(Pos[0]);
  else if (Cmd == "golden")
    Rc = cmdGolden(Pos[0], Pos[1]);
  else if (Cmd == "harvest")
    Rc = cmdHarvest(Pos[0], Pos[1]);
  else if (Cmd == "build")
    Rc = cmdBuild(epochsArg(Pos, 0, 8));
  else if (Cmd == "train") {
    double LearningRate = 1e-3;
    if (Args.has("lr"))
      LearningRate = std::strtod(Args.get("lr").c_str(), nullptr);
    unsigned long long Seed = 42;
    if (Args.has("seed"))
      Seed = std::strtoull(Args.get("seed").c_str(), nullptr, 10);
    Rc = cmdTrain(Args.getInt("epochs", 8), Args.getInt("batch-size", 8),
                  LearningRate, Seed);
  }
  else if (Cmd == "inspect")
    Rc = cmdInspect();
  else if (Cmd == "generate")
    Rc = cmdGenerate(Pos[0], epochsArg(Pos, 1, 8));
  else if (Cmd == "evaluate")
    Rc = cmdEvaluate(Pos[0], epochsArg(Pos, 1, 8));
  else if (Cmd == "repair")
    Rc = cmdRepair(Pos[0], epochsArg(Pos, 1, 8), Args.getInt("beam", 4),
                   Args.getInt("rounds", 2));
  else if (Cmd == "flywheel") {
    flywheel::FlywheelOptions FOpts;
    FOpts.Targets = Pos;
    FOpts.Generations = Args.getInt("generations", 3);
    FOpts.FineTuneEpochs = Args.getInt("ft-epochs", 2);
    FOpts.BeamWidth = Args.getInt("beam", 4);
    FOpts.MaxRounds = Args.getInt("rounds", 2);
    FOpts.OutDir = Args.get("out-dir");
    FOpts.Verbose = true;
    if (Args.has("seed"))
      FOpts.Seed = std::strtoull(Args.get("seed").c_str(), nullptr, 10);
    if (Args.has("harvest-negatives")) {
      const std::string &V = Args.get("harvest-negatives");
      if (V != "on" && V != "off")
        return fail(Status::invalidArgument(
            "unknown --harvest-negatives '" + V + "' (expected on or off)"));
      FOpts.HarvestNegatives = V == "on";
    }
    Rc = cmdFlywheel(Args.getInt("epochs", 8), std::move(FOpts));
  }
  else if (Cmd == "forkflow")
    Rc = cmdForkflow(Pos[0]);
  else if (Cmd == "stats")
    Rc = cmdStats(Args.get("socket"));

  if (Args.has("trace-out") &&
      !obs::TraceRecorder::instance().writeChromeTrace(Args.get("trace-out"))) {
    std::fprintf(stderr, "vega-cli: error: cannot write trace to '%s'\n",
                 Args.get("trace-out").c_str());
    Rc = Rc ? Rc : 1;
  }
  if (Args.has("metrics-out") &&
      !obs::MetricsRegistry::instance().writeJson(Args.get("metrics-out"))) {
    std::fprintf(stderr, "vega-cli: error: cannot write metrics to '%s'\n",
                 Args.get("metrics-out").c_str());
    Rc = Rc ? Rc : 1;
  }
  if (Args.has("stats"))
    std::printf("%s", obs::MetricsRegistry::instance().textSummary().c_str());
  return Rc;
}
