//===- interp/Value.h - Runtime values ---------------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values for the backend-function interpreter: integers, booleans,
/// and symbols (enum members, registers, relocation names — compared by
/// spelling). The interpreter gives the reproduction a semantic pass@1:
/// a generated function is accurate when it behaves like the golden one on
/// the regression inputs, not when it is textually identical.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_INTERP_VALUE_H
#define VEGA_INTERP_VALUE_H

#include <cstdint>
#include <string>

namespace vega {

/// A runtime value.
struct Value {
  enum class Kind : uint8_t { Unit, Int, Bool, Sym };
  Kind K = Kind::Unit;
  int64_t IntV = 0;
  bool BoolV = false;
  std::string SymV;

  static Value unit() { return Value(); }
  static Value integer(int64_t V) {
    Value R;
    R.K = Kind::Int;
    R.IntV = V;
    return R;
  }
  static Value boolean(bool V) {
    Value R;
    R.K = Kind::Bool;
    R.BoolV = V;
    return R;
  }
  static Value symbol(std::string S) {
    Value R;
    R.K = Kind::Sym;
    R.SymV = std::move(S);
    return R;
  }

  bool isUnit() const { return K == Kind::Unit; }
  bool isInt() const { return K == Kind::Int; }
  bool isBool() const { return K == Kind::Bool; }
  bool isSym() const { return K == Kind::Sym; }

  bool operator==(const Value &O) const {
    if (K != O.K)
      return false;
    switch (K) {
    case Kind::Unit:
      return true;
    case Kind::Int:
      return IntV == O.IntV;
    case Kind::Bool:
      return BoolV == O.BoolV;
    case Kind::Sym:
      return SymV == O.SymV;
    }
    return false;
  }

  /// Printable form (used in effect traces).
  std::string str() const {
    switch (K) {
    case Kind::Unit:
      return "unit";
    case Kind::Int:
      return std::to_string(IntV);
    case Kind::Bool:
      return BoolV ? "true" : "false";
    case Kind::Sym:
      return SymV;
    }
    return "?";
  }
};

} // namespace vega

#endif // VEGA_INTERP_VALUE_H
