//===- model/Trainer.h - Data-parallel fine-tuning engine --------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public training surface for CodeBE (Stage 2 of the pipeline):
/// TrainOptions — the full schedule as a first-class config (epochs, batch
/// size, learning rate, seed, jobs, epoch callback) — and Trainer, a
/// data-parallel engine that fans per-example forward/backward passes
/// across a ThreadPool and folds the per-example gradients with a
/// fixed-order deterministic reduction before each optimizer step.
///
/// Determinism contract: for a given model, data, and TrainOptions
/// schedule, the resulting weights are bit-identical for every Jobs value.
/// See DESIGN.md §11 for the tape ownership model and reduction order.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_MODEL_TRAINER_H
#define VEGA_MODEL_TRAINER_H

#include "model/CodeBE.h"
#include "support/Status.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace vega {
namespace model {

/// Per-epoch diagnostics delivered to TrainOptions::OnEpoch and summarized
/// in TrainResult.
struct EpochStats {
  int Epoch = 0;
  double MeanLoss = 0.0;
  size_t Examples = 0; ///< trainable examples seen this epoch
  double Seconds = 0.0;
  double ExamplesPerSec = 0.0;
};

/// The training schedule. Everything the engine needs is here; CodeBEConfig
/// keeps only the architecture (plus legacy schedule defaults mirrored by
/// fromConfig()).
struct TrainOptions {
  int Epochs = 2;
  int BatchSize = 8;
  float LearningRate = 1e-3f;
  /// Seeds the epoch shuffler (weight init is seeded at model
  /// construction).
  uint64_t Seed = 42;
  /// Data-parallel lanes per minibatch. <= 0 selects ThreadPool's default
  /// (VEGA_JOBS when set, else hardware concurrency); 1 runs fully inline.
  /// Weights are bit-identical for every value — jobs trade wall-clock,
  /// never results.
  int Jobs = 1;
  /// Invoked after every epoch (loss curve hooks, verbose progress).
  std::function<void(const EpochStats &)> OnEpoch;
  /// Optional per-example loss weights, index-parallel with the data vector
  /// handed to Trainer::run (weights follow examples through the epoch
  /// shuffle). Empty means every example weighs 1.0 — the legacy behaviour,
  /// bit-identical to a weightless run. Weight-1.0 lanes skip the scale
  /// node entirely, so an all-1.0 vector also trains the legacy bits. The
  /// flywheel uses fractional weights to down-weight harvested hard
  /// negatives (DESIGN.md §17).
  std::vector<float> ExampleWeights;

  /// The legacy schedule that used to live in CodeBEConfig, as
  /// TrainOptions (Jobs stays 1: the serial behavior CodeBE::train always
  /// had).
  static TrainOptions fromConfig(const CodeBEConfig &Config);

  /// Ok, or InvalidArgument naming the first out-of-range field. The
  /// ExampleWeights size check happens in Trainer::run (only there is the
  /// data size known); values are checked here.
  Status validate() const;
};

/// What a completed run did.
struct TrainResult {
  int EpochsRun = 0;
  size_t ExamplesSeen = 0; ///< summed over epochs
  double FinalMeanLoss = 0.0;
  std::vector<double> EpochMeanLoss; ///< one entry per epoch
  double Seconds = 0.0;
  double ExamplesPerSec = 0.0;
  int JobsUsed = 1;
};

/// Fine-tunes a CodeBE model on feature-vector → statement pairs
/// (teacher forcing, Adam, cross-entropy — paper §4.1.2), one instance per
/// run. Within each minibatch the per-example tapes are built and walked
/// concurrently, each accumulating into a private GradSink; the sinks are
/// then folded into the parameter gradients in ascending example order, so
/// the single AdamOptimizer::step() consumes the same bits regardless of
/// thread count.
class Trainer {
public:
  Trainer(CodeBE &Model, TrainOptions Opts);

  /// Runs the whole schedule. InvalidArgument when the options fail
  /// validation; otherwise the run summary. Emits stage2.epoch /
  /// stage2.batch spans and train.* metrics (see DESIGN.md §8).
  StatusOr<TrainResult> run(const std::vector<TrainPair> &Data);

private:
  CodeBE &Model;
  TrainOptions Opts;
};

} // namespace model
} // namespace vega

#endif // VEGA_MODEL_TRAINER_H
