//===- bench/ablation_model_capacity.cpp - capacity ablation --------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// §4.1.2 notes that UniXcoder-based VEGA beats RNN- and vanilla-BERT-based
/// variants by 32-78 points — model quality matters. At our scale the
/// analogous knob is transformer capacity: a 1-layer / d=32 CodeBE versus
/// the default 2-layer / d=64 one, same training budget.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace vega;

namespace {

double accuracyWithModel(int Layers, int DModel, int FF, const char *Cache,
                         double &ExactMatch, bool ReuseMainBudget = false) {
  VegaOptions Opts;
  Opts.Model.Epochs = ReuseMainBudget ? bench::defaultEpochs()
                                      : std::max(2, bench::defaultEpochs() / 6);
  Opts.Model.EncLayers = Layers;
  Opts.Model.DecLayers = Layers;
  Opts.Model.DModel = DModel;
  Opts.Model.FFDim = FF;
  Opts.WeightCachePath = Cache;
  Opts.Verbose = true;
  VegaSystem Sys(bench::corpus(), Opts);
  Sys.buildTemplates();
  Sys.buildDataset();
  Sys.trainModel();
  ExactMatch = Sys.verificationExactMatch(400);
  GeneratedBackend GB = Sys.generateBackend("RISCV");
  BackendEval Eval =
      evaluateBackend(GB, *bench::corpus().backend("RISCV"),
                      *bench::corpus().targets().find("RISCV"));
  return Eval.functionAccuracy();
}

} // namespace

int main() {
  double EmSmall = 0.0, EmFull = 0.0;
  double Small =
      accuracyWithModel(1, 32, 96, "vega_model_ablcap_small.bin", EmSmall);
  // The full-capacity arm is the main bench model; reuse its cache.
  double Full = accuracyWithModel(2, 64, 192, "vega_model_cache.bin", EmFull,
                                  /*ReuseMainBudget=*/true);

  TextTable Table;
  Table.setHeader({"CodeBE capacity", "Verify EM", "RISCV fn accuracy"});
  Table.addRow({"1 layer, d=32", TextTable::formatPercent(EmSmall),
                TextTable::formatPercent(Small)});
  Table.addRow({"2 layers, d=64 (default)", TextTable::formatPercent(EmFull),
                TextTable::formatPercent(Full)});
  std::printf("== Model-capacity ablation ==\n%s\n", Table.render().c_str());
  std::printf("shape to match: the larger model wins, mirroring the paper's "
              "UniXcoder > BERT > RNN ordering\n");
  return 0;
}
