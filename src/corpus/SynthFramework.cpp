//===- corpus/SynthFramework.cpp - LLVMDIRs renderer ------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "corpus/SynthFramework.h"

#include "corpus/SourceBuilder.h"

using namespace vega;

const std::vector<std::string> &vega::llvmDirs() {
  static const std::vector<std::string> Dirs = {
      "llvm/CodeGen", "llvm/MC", "llvm/BinaryFormat", "llvm/Target"};
  return Dirs;
}

std::vector<std::string> vega::targetDirs(const std::string &TargetName) {
  return {"lib/Target/" + TargetName, "llvm/BinaryFormat/ELFRelocs"};
}

namespace {

std::string renderMCExprHeader() {
  SourceBuilder S;
  S.open("class MCExpr {");
  S.line("int Kind;");
  S.close("};");
  S.blank();
  S.open("class MCSymbolRefExpr {");
  S.open("enum VariantKind {");
  S.line("VK_None,");
  S.line("VK_GOT,");
  S.line("VK_TPREL,");
  S.line("VK_PLT,");
  S.close("};");
  S.line("VariantKind getKind();");
  S.close("};");
  S.blank();
  S.open("class MCValue {");
  S.line("MCSymbolRefExpr getAccessVariant();");
  S.line("int getConstant();");
  S.close("};");
  return S.str();
}

std::string renderMCFixupHeader() {
  SourceBuilder S;
  S.open("enum MCFixupKind {");
  S.line("FK_NONE,");
  S.line("FK_Data_1,");
  S.line("FK_Data_2,");
  S.line("FK_Data_4,");
  S.line("FK_Data_8,");
  S.line("FirstTargetFixupKind = 128,");
  S.line("MaxTargetFixupKind = 255,");
  S.close("};");
  S.blank();
  S.open("class MCFixup {");
  S.line("unsigned getTargetKind();");
  S.line("MCFixupKind getKind();");
  S.line("int getOffset();");
  S.close("};");
  S.blank();
  S.open("struct MCFixupKindInfo {");
  S.line("int TargetOffset;");
  S.line("int TargetSize;");
  S.line("unsigned Flags;");
  S.open("enum FixupKindFlags {");
  S.line("FKF_IsPCRel = 1,");
  S.line("FKF_IsAlignedDownTo32Bits = 2,");
  S.close("};");
  S.close("};");
  return S.str();
}

std::string renderMCCoreHeader() {
  SourceBuilder S;
  S.open("class MCInst {");
  S.line("unsigned getOpcode();");
  S.line("void setOpcode(unsigned Op);");
  S.line("int getNumOperands();");
  S.line("void addOperand(int Op);");
  S.close("};");
  S.blank();
  S.open("class MCOperand {");
  S.line("bool isReg();");
  S.line("bool isImm();");
  S.line("unsigned getReg();");
  S.line("int getImm();");
  S.close("};");
  S.blank();
  S.open("class MCAsmInfo {");
  S.line("DataDirective = \".data\";");
  S.line("CommentString = \";\";");
  S.line("GlobalDirective = \".globl\";");
  S.line("SupportsDebugInformation = 0;");
  S.close("};");
  S.blank();
  S.open("class MCDisassembler {");
  S.open("enum DecodeStatus {");
  S.line("Fail = 0,");
  S.line("SoftFail = 1,");
  S.line("Success = 3,");
  S.close("};");
  S.close("};");
  S.blank();
  S.open("class MCELFObjectTargetWriter {");
  S.line("unsigned getRelocType(MCValue Target, MCFixup Fixup, bool IsPCRel);");
  S.close("};");
  S.blank();
  S.open("class MCAsmBackend {");
  S.line("void applyFixup(MCFixup Fixup, int Value);");
  S.line("unsigned getNumFixupKinds();");
  S.line("MCFixupKindInfo getFixupKindInfo(MCFixupKind Kind);");
  S.close("};");
  S.blank();
  S.open("class MCCodeEmitter {");
  S.line("void encodeInstruction(MCInst Inst);");
  S.close("};");
  S.blank();
  S.open("class MCTargetAsmParser {");
  S.line("bool parseRegister(unsigned RegNo);");
  S.line("bool parseOperand(int Op);");
  S.line("bool parseDirective(int DirectiveID);");
  S.line("bool matchAndEmitInstruction(unsigned Opcode);");
  S.open("enum MatchResultTy {");
  S.line("Match_Success,");
  S.line("Match_MissingFeature,");
  S.line("Match_InvalidOperand,");
  S.line("Match_MnemonicFail,");
  S.close("};");
  S.close("};");
  return S.str();
}

std::string renderCodeGenHeader() {
  SourceBuilder S;
  S.open("namespace ISD {");
  S.open("enum NodeType {");
  S.line("ADD,");
  S.line("SUB,");
  S.line("MUL,");
  S.line("SDIV,");
  S.line("LOAD,");
  S.line("STORE,");
  S.line("BR,");
  S.line("BRCOND,");
  S.line("SELECT,");
  S.line("SETCC,");
  S.line("GlobalAddress,");
  S.line("FrameIndex,");
  S.line("Constant,");
  S.line("SHL,");
  S.line("SRL,");
  S.line("AND,");
  S.line("OR,");
  S.line("XOR,");
  S.line("CALLSEQ_START,");
  S.line("CALLSEQ_END,");
  S.line("BUILTIN_OP_END = 512,");
  S.close("};");
  S.close("}");
  S.blank();
  S.open("class SelectionDAG {");
  S.line("int getNode(unsigned Opcode);");
  S.line("int getRegister(unsigned Reg);");
  S.line("int getTargetGlobalAddress(int GV);");
  S.line("int getTargetConstant(int Val);");
  S.close("};");
  S.blank();
  S.open("class MachineInstr {");
  S.line("unsigned getOpcode();");
  S.line("int getNumOperands();");
  S.line("bool isBranch();");
  S.line("bool isCall();");
  S.line("bool isLoad();");
  S.close("};");
  S.blank();
  S.open("class MachineFunction {");
  S.line("int getFrameSize();");
  S.line("bool hasVarSizedObjects();");
  S.line("int getNumBlocks();");
  S.close("};");
  S.blank();
  S.open("class MachineBasicBlock {");
  S.line("int size();");
  S.line("bool isEntryBlock();");
  S.close("};");
  S.blank();
  S.open("class TargetRegisterInfo {");
  S.line("int getReservedRegs(MachineFunction MF);");
  S.line("unsigned getFrameRegister(MachineFunction MF);");
  S.line("bool requiresRegisterScavenging(MachineFunction MF);");
  S.line("bool canRealignStack(MachineFunction MF);");
  S.close("};");
  S.blank();
  S.open("class TargetInstrInfo {");
  S.line("int getInstrLatency(MachineInstr MI);");
  S.line("bool isSchedulingBoundary(MachineInstr MI);");
  S.close("};");
  S.blank();
  S.open("class TargetLowering {");
  S.line("int lowerCall(SelectionDAG DAG);");
  S.line("int lowerReturn(SelectionDAG DAG);");
  S.line("int lowerGlobalAddress(SelectionDAG DAG);");
  S.line("bool isLegalICmpImmediate(int Imm);");
  S.close("};");
  S.blank();
  S.open("class TargetFrameLowering {");
  S.line("void emitPrologue(MachineFunction MF);");
  S.line("void emitEpilogue(MachineFunction MF);");
  S.line("bool hasFP(MachineFunction MF);");
  S.close("};");
  S.blank();
  S.open("class ScheduleHazardRecognizer {");
  S.open("enum HazardType {");
  S.line("NoHazard,");
  S.line("Hazard,");
  S.line("NoopHazard,");
  S.close("};");
  S.close("};");
  S.blank();
  S.open("class RegScavenger {");
  S.line("unsigned scavengeRegister(int RC);");
  S.close("};");
  return S.str();
}

std::string renderTargetTd() {
  // The framework Target.td: TableGen classes whose fields are the
  // target-independent/dependent property *declarations* (identified sites).
  SourceBuilder S;
  S.open("class Target {");
  S.line("string Name = \"\";");
  S.line("IsLittleEndian = 1;");
  S.line("IsBigEndian = 0;");
  S.line("Is64Bit = 0;");
  S.line("HasDelaySlots = 0;");
  S.line("HasHardwareLoop = 0;");
  S.line("HasVectorUnit = 0;");
  S.line("HasCompressedISA = 0;");
  S.line("HasThreadScheduler = 0;");
  S.line("HasPostRAScheduler = 0;");
  S.line("UsesRegScavenger = 0;");
  S.line("ImmWidth = 16;");
  S.line("VectorWidth = 0;");
  S.close("};");
  S.blank();
  S.open("class Instruction {");
  S.line("string Mnemonic = \"\";");
  S.line("OperandType = \"OPERAND_IMMEDIATE\";");
  S.line("Cycles = 1;");
  S.line("Size = 4;");
  S.line("string InstrClass = \"Alu\";");
  S.close("};");
  S.blank();
  S.open("class Register {");
  S.line("string AsmName = \"\";");
  S.line("IsReserved = 0;");
  S.close("};");
  S.blank();
  S.open("class RegisterClass {");
  S.line("RegCount = 0;");
  S.line("Alignment = 4;");
  S.close("};");
  S.blank();
  S.open("class SchedModel {");
  S.line("LoadLatency = 1;");
  S.line("BranchLatency = 1;");
  S.line("IssueWidth = 1;");
  S.close("};");
  S.blank();
  S.open("class FrameModel {");
  S.line("StackAlignment = 8;");
  S.line("NumRegs = 32;");
  S.line("ReservedRegs = 2;");
  S.close("};");
  S.blank();
  S.open("class SubtargetFeature {");
  S.line("string FeatureName = \"\";");
  S.close("};");
  return S.str();
}

std::string renderElfHeader() {
  SourceBuilder S;
  S.open("namespace ELF {");
  S.open("enum RelocationType {");
  S.line("R_NONE = 0,");
  S.close("};");
  S.line("ELF_RELOC(R_NONE, 0);");
  S.close("}");
  S.blank();
  S.open("struct ELFObjectFile {");
  S.line("int SectionCount;");
  S.close("};");
  return S.str();
}

} // namespace

void vega::renderFramework(VirtualFileSystem &VFS) {
  VFS.addFile("llvm/MC/MCExpr.h", renderMCExprHeader());
  VFS.addFile("llvm/MC/MCFixup.h", renderMCFixupHeader());
  VFS.addFile("llvm/MC/MCCore.h", renderMCCoreHeader());
  VFS.addFile("llvm/CodeGen/CodeGen.h", renderCodeGenHeader());
  VFS.addFile("llvm/Target/Target.td", renderTargetTd());
  VFS.addFile("llvm/BinaryFormat/ELF.h", renderElfHeader());
}
