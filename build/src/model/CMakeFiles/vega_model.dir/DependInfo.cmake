
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/Autograd.cpp" "src/model/CMakeFiles/vega_model.dir/Autograd.cpp.o" "gcc" "src/model/CMakeFiles/vega_model.dir/Autograd.cpp.o.d"
  "/root/repo/src/model/CodeBE.cpp" "src/model/CMakeFiles/vega_model.dir/CodeBE.cpp.o" "gcc" "src/model/CMakeFiles/vega_model.dir/CodeBE.cpp.o.d"
  "/root/repo/src/model/Vocab.cpp" "src/model/CMakeFiles/vega_model.dir/Vocab.cpp.o" "gcc" "src/model/CMakeFiles/vega_model.dir/Vocab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/vega_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
