# Empty dependencies file for vega_ast.
# This may be replaced when dependencies are built.
