file(REMOVE_RECURSE
  "libvega_core.a"
)
