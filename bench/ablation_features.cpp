//===- bench/ablation_features.cpp - feature ablation ---------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// DESIGN.md §5 feature ablation: VEGA's two feature families are the
/// Boolean target-independent properties (statement presence) and the
/// string target-dependent values (statement content). Dropping either
/// from the feature vectors must hurt: without values the model cannot
/// name fixups/relocations; without Booleans it cannot decide presence.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace vega;

namespace {

double accuracyWith(bool UseValues, bool UseBools, const char *Cache,
                    bool ReuseMainBudget = false) {
  VegaOptions Opts;
  Opts.Model.Epochs = ReuseMainBudget ? bench::defaultEpochs()
                                      : std::max(2, bench::defaultEpochs() / 6);
  Opts.UseTargetDependentValues = UseValues;
  Opts.UseTargetIndependentBools = UseBools;
  Opts.WeightCachePath = Cache;
  Opts.Verbose = true;
  VegaSystem Sys(bench::corpus(), Opts);
  Sys.buildTemplates();
  Sys.buildDataset();
  Sys.trainModel();
  GeneratedBackend GB = Sys.generateBackend("RISCV");
  BackendEval Eval =
      evaluateBackend(GB, *bench::corpus().backend("RISCV"),
                      *bench::corpus().targets().find("RISCV"));
  return Eval.functionAccuracy();
}

} // namespace

int main() {
  // The full arm is the main bench model (same config), so its cached
  // weights are reused; the ablated arms train small equal-budget models.
  double Full = accuracyWith(true, true, "vega_model_cache.bin",
                             /*ReuseMainBudget=*/true);
  double NoValues = accuracyWith(false, true, "vega_model_ablfeat_noval.bin");
  double NoBools = accuracyWith(true, false, "vega_model_ablfeat_nobool.bin");

  TextTable Table;
  Table.setHeader({"Feature set", "RISCV fn accuracy"});
  Table.addRow({"full (bools + values)", TextTable::formatPercent(Full)});
  Table.addRow({"no target-dependent values",
                TextTable::formatPercent(NoValues)});
  Table.addRow({"no target-independent bools",
                TextTable::formatPercent(NoBools)});
  std::printf("== Feature ablation (equal training budget per arm) ==\n%s\n",
              Table.render().c_str());
  std::printf("note: with template-guided decoding the feature vectors "
              "drive candidate selection and confidence only, so arm "
              "differences are a handful of functions (~2.5%% per function "
              "on this 40-function backend) and can land either way; the "
              "value segment remains load-bearing for the raw seq2seq "
              "decoder (see DESIGN.md)\n");
  return 0;
}
