//===- eval/EffortModel.cpp - Manual-effort model ----------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "eval/EffortModel.h"

using namespace vega;

// Rates are paper Table 4 hours divided by paper Table 3 manual-statement
// counts for RISC-V (hours per statement).
DeveloperProfile vega::developerA() {
  DeveloperProfile P;
  P.Name = "Developer A";
  P.HoursPerStatement = {
      {BackendModule::SEL, 21.83 / 3747.0},
      {BackendModule::REG, 0.41 / 35.0},
      {BackendModule::OPT, 7.23 / 1204.0},
      {BackendModule::SCH, 3.17 / 281.0},
      {BackendModule::EMI, 4.15 / 589.0},
      {BackendModule::ASS, 5.17 / 1310.0},
      {BackendModule::DIS, 0.58 / 57.0},
  };
  return P;
}

DeveloperProfile vega::developerB() {
  DeveloperProfile P;
  P.Name = "Developer B";
  P.HoursPerStatement = {
      {BackendModule::SEL, 17.47 / 3747.0},
      {BackendModule::REG, 0.39 / 35.0},
      {BackendModule::OPT, 10.87 / 1204.0},
      {BackendModule::SCH, 3.04 / 281.0},
      {BackendModule::EMI, 7.47 / 589.0},
      {BackendModule::ASS, 7.90 / 1310.0},
      {BackendModule::DIS, 0.98 / 57.0},
  };
  return P;
}

std::map<BackendModule, double>
vega::estimateRepairHours(const BackendEval &Eval,
                          const DeveloperProfile &Profile) {
  std::map<BackendModule, double> Hours;
  for (BackendModule Module : AllModules) {
    auto It = Eval.PerModule.find(Module);
    if (It == Eval.PerModule.end())
      continue;
    auto RIt = Profile.HoursPerStatement.find(Module);
    double Rate = RIt == Profile.HoursPerStatement.end() ? 0.005
                                                         : RIt->second;
    Hours[Module] = static_cast<double>(It->second.ManualStatements) * Rate;
  }
  return Hours;
}

double vega::totalRepairHours(const BackendEval &Eval,
                              const DeveloperProfile &Profile) {
  double Total = 0.0;
  for (const auto &[Module, Hours] : estimateRepairHours(Eval, Profile))
    Total += Hours;
  return Total;
}
