//===- support/VirtualFileSystem.h - In-memory file tree ---------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-memory file tree. The synthetic backend corpus (SynthLLVM) renders
/// LLVMDIRs and TGTDIRs into a VirtualFileSystem, and Algorithm 1 searches
/// it exactly the way the paper searches a checked-out LLVM tree.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SUPPORT_VIRTUALFILESYSTEM_H
#define VEGA_SUPPORT_VIRTUALFILESYSTEM_H

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vega {

/// A single file in the virtual tree.
struct VirtualFile {
  std::string Path;
  std::string Content;
};

/// Path-keyed in-memory filesystem with prefix (directory) queries.
///
/// Paths are '/'-separated and normalized to have no leading slash.
/// Iteration order is deterministic (lexicographic by path).
class VirtualFileSystem {
public:
  /// Adds or replaces the file at \p Path.
  void addFile(std::string_view Path, std::string Content);

  /// Appends \p Content to the file at \p Path, creating it if missing.
  void appendToFile(std::string_view Path, std::string_view Content);

  /// Returns the content at \p Path, or std::nullopt when absent.
  std::optional<std::string> getFile(std::string_view Path) const;

  /// True when a file exists at \p Path.
  bool exists(std::string_view Path) const;

  /// Removes the file at \p Path; returns true when something was removed.
  bool removeFile(std::string_view Path);

  /// All files whose path starts with directory prefix \p Dir
  /// ("lib/Target/ARM" matches "lib/Target/ARM/ARM.td" but not
  /// "lib/Target/ARM64/x.td").
  std::vector<const VirtualFile *> filesUnder(std::string_view Dir) const;

  /// Files under \p Dir whose name ends with \p Extension (e.g. ".td").
  std::vector<const VirtualFile *>
  filesUnderWithExtension(std::string_view Dir,
                          std::string_view Extension) const;

  /// All files, in path order.
  std::vector<const VirtualFile *> allFiles() const;

  /// Number of files.
  size_t size() const { return Files.size(); }

  /// Normalizes a path: strips leading "./" and "/" and collapses "//".
  static std::string normalizePath(std::string_view Path);

private:
  std::map<std::string, VirtualFile> Files;
};

} // namespace vega

#endif // VEGA_SUPPORT_VIRTUALFILESYSTEM_H
