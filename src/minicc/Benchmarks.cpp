//===- minicc/Benchmarks.cpp - Workload generators ---------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "minicc/Benchmarks.h"

#include "support/RNG.h"

using namespace vega;

const std::vector<std::string> &vega::specSuite() {
  static const std::vector<std::string> Names = {
      "500.perlbench_r", "502.gcc_r",       "505.mcf_r",
      "508.namd_r",      "510.parest_r",    "511.povray_r",
      "519.lbm_r",       "520.omnetpp_r",   "523.xalancbmk_r",
      "525.x264_r",      "526.blender_r",   "531.deepsjeng_r",
      "538.imagick_r",   "541.leela_r",     "544.nab_r",
      "557.xz_r",        "600.perlbench_s", "602.gcc_s",
      "605.mcf_s",       "619.lbm_s",       "620.omnetpp_s",
      "623.xalancbmk_s", "625.x264_s",      "631.deepsjeng_s",
      "638.imagick_s",   "641.leela_s",     "644.nab_s",
      "657.xz_s"};
  return Names;
}

const std::vector<std::string> &vega::pulpSuite() {
  static std::vector<std::string> Names = [] {
    std::vector<std::string> Out;
    const char *Groups[] = {"ml", "dsp", "seq", "par", "bit", "mem", "ctl"};
    for (const char *G : Groups)
      for (int I = 0; I < 10; ++I)
        Out.push_back(std::string("pulp_") + G + "_" + std::to_string(I));
    Out.resize(69);
    return Out;
  }();
  return Names;
}

const std::vector<std::string> &vega::embenchSuite() {
  static const std::vector<std::string> Names = {
      "aha-mont64",  "crc32",        "cubic",       "edn",
      "huffbench",   "matmult-int",  "md5sum",      "minver",
      "nbody",       "nettle-aes",   "nettle-sha256", "nsichneu",
      "picojpeg",    "primecount",   "qrduino",     "sglib-combined",
      "slre",        "st",           "statemate",   "tarfind",
      "ud",          "wikisort"};
  return Names;
}

namespace {

uint64_t hashName(const std::string &Name) {
  uint64_t H = 1469598103934665603ULL;
  for (char C : Name) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

/// Kernel builders append blocks to \p Fn.
void addReductionLoop(IRFunction &Fn, RNG &Rng) {
  IRBlock Body;
  Body.Name = "bb" + std::to_string(Fn.Blocks.size());
  int Acc = Fn.NumVRegs++, Ptr = Fn.NumVRegs++, Elem = Fn.NumVRegs++;
  int Stride = Fn.NumVRegs++;
  IRInstr StrideInit;
  StrideInit.Op = IROp::MovImm;
  StrideInit.Dst = Stride;
  StrideInit.Imm = 4;
  StrideInit.UsesImm = true;
  StrideInit.LoopInvariant = true;
  Body.Instrs.push_back(StrideInit);
  Body.Instrs.push_back({IROp::Load, Elem, Ptr, -1, 0, false, -1, "", false});
  Body.Instrs.push_back(
      {IROp::Add, Acc, Acc, Elem, 0, false, -1, "", false});
  Body.Instrs.push_back(
      {IROp::Add, Ptr, Ptr, Stride, 0, false, -1, "", false});
  int CmpReg = Fn.NumVRegs++;
  Body.Instrs.push_back({IROp::Cmp, CmpReg, Ptr, -1, 4096, true, -1, "",
                         false});
  Body.Instrs.push_back({IROp::CondBr, -1, CmpReg, -1, 0, false,
                         static_cast<int>(Fn.Blocks.size()), "", false});
  IRLoop Loop;
  Loop.BodyBlock = static_cast<int>(Fn.Blocks.size());
  Loop.TripCount = 64 + static_cast<int>(Rng.nextBelow(192));
  Loop.Vectorizable = true;
  Fn.Loops.push_back(Loop);
  Fn.Blocks.push_back(std::move(Body));
}

void addPointerChaseLoop(IRFunction &Fn, RNG &Rng) {
  IRBlock Body;
  Body.Name = "bb" + std::to_string(Fn.Blocks.size());
  int Node = Fn.NumVRegs++, Next = Fn.NumVRegs++, Sum = Fn.NumVRegs++;
  Body.Instrs.push_back({IROp::Load, Next, Node, -1, 0, false, -1, "", false});
  Body.Instrs.push_back({IROp::Load, Sum, Next, -1, 8, true, -1, "", false});
  Body.Instrs.push_back({IROp::Mov, Node, Next, -1, 0, false, -1, "", false});
  int CmpReg = Fn.NumVRegs++;
  Body.Instrs.push_back(
      {IROp::Cmp, CmpReg, Node, -1, 0, true, -1, "", false});
  Body.Instrs.push_back({IROp::CondBr, -1, CmpReg, -1, 0, false,
                         static_cast<int>(Fn.Blocks.size()), "", false});
  IRLoop Loop;
  Loop.BodyBlock = static_cast<int>(Fn.Blocks.size());
  Loop.TripCount = 128 + static_cast<int>(Rng.nextBelow(256));
  Loop.Vectorizable = false;
  Fn.Loops.push_back(Loop);
  Fn.Blocks.push_back(std::move(Body));
}

void addBranchyLoop(IRFunction &Fn, RNG &Rng) {
  IRBlock Body;
  Body.Name = "bb" + std::to_string(Fn.Blocks.size());
  int X = Fn.NumVRegs++, Y = Fn.NumVRegs++, M = Fn.NumVRegs++;
  Body.Instrs.push_back({IROp::And, M, X, -1, 1, true, -1, "", false});
  int CmpReg = Fn.NumVRegs++;
  Body.Instrs.push_back({IROp::Cmp, CmpReg, M, -1, 0, true, -1, "", false});
  Body.Instrs.push_back({IROp::CondBr, -1, CmpReg, -1, 0, false, 0, "",
                         false});
  Body.Instrs.push_back({IROp::Add, Y, Y, X, 0, false, -1, "", false});
  Body.Instrs.push_back({IROp::Shr, X, X, -1, 1, true, -1, "", false});
  Body.Instrs.push_back({IROp::CondBr, -1, X, -1, 0, false,
                         static_cast<int>(Fn.Blocks.size()), "", false});
  IRLoop Loop;
  Loop.BodyBlock = static_cast<int>(Fn.Blocks.size());
  Loop.TripCount = 32 + static_cast<int>(Rng.nextBelow(96));
  Loop.Vectorizable = false;
  Loop.NumBlocks = 2; // branchy: not a candidate for strict hw loops
  Fn.Loops.push_back(Loop);
  Fn.Blocks.push_back(std::move(Body));
}

void addMulDivKernel(IRFunction &Fn, RNG &Rng) {
  IRBlock Body;
  Body.Name = "bb" + std::to_string(Fn.Blocks.size());
  int A = Fn.NumVRegs++, B = Fn.NumVRegs++, C = Fn.NumVRegs++;
  Body.Instrs.push_back({IROp::Mul, C, A, -1, 8, true, -1, "", false});
  Body.Instrs.push_back({IROp::Mul, C, C, B, 0, false, -1, "", false});
  Body.Instrs.push_back({IROp::Div, C, C, A, 0, false, -1, "", false});
  int CmpReg = Fn.NumVRegs++;
  Body.Instrs.push_back({IROp::Cmp, CmpReg, C, -1, 100, true, -1, "", false});
  Body.Instrs.push_back({IROp::CondBr, -1, CmpReg, -1, 0, false,
                         static_cast<int>(Fn.Blocks.size()), "", false});
  IRLoop Loop;
  Loop.BodyBlock = static_cast<int>(Fn.Blocks.size());
  Loop.TripCount = 16 + static_cast<int>(Rng.nextBelow(48));
  Fn.Loops.push_back(Loop);
  Fn.Blocks.push_back(std::move(Body));
}

void addStraightLine(IRFunction &Fn, RNG &Rng) {
  IRBlock Body;
  Body.Name = "bb" + std::to_string(Fn.Blocks.size());
  int Count = 6 + static_cast<int>(Rng.nextBelow(10));
  int Prev = Fn.NumVRegs++;
  IRInstr Init;
  Init.Op = IROp::MovImm;
  Init.Dst = Prev;
  Init.Imm = 3;
  Init.UsesImm = true;
  Body.Instrs.push_back(Init);
  for (int I = 0; I < Count; ++I) {
    int Dst = Fn.NumVRegs++;
    IROp Op = Rng.nextBool(0.5) ? IROp::Add : IROp::Xor;
    Body.Instrs.push_back({Op, Dst, Prev, -1,
                           static_cast<int64_t>(Rng.nextBelow(64)), true, -1,
                           "", false});
    // Some results are dead on purpose (DCE fodder).
    if (!Rng.nextBool(0.3))
      Prev = Dst;
  }
  IRInstr StoreIt;
  StoreIt.Op = IROp::Store;
  StoreIt.A = Prev;
  Body.Instrs.push_back(StoreIt);
  Fn.Blocks.push_back(std::move(Body));
}

void addCallKernel(IRFunction &Fn, RNG &Rng) {
  IRBlock Body;
  Body.Name = "bb" + std::to_string(Fn.Blocks.size());
  int Count = 2 + static_cast<int>(Rng.nextBelow(3));
  for (int I = 0; I < Count; ++I) {
    IRInstr CallIt;
    CallIt.Op = IROp::Call;
    CallIt.Callee = "helper" + std::to_string(I);
    Body.Instrs.push_back(CallIt);
  }
  Fn.Blocks.push_back(std::move(Body));
}

} // namespace

IRModule vega::buildBenchmark(const std::string &BenchmarkName) {
  IRModule Module;
  Module.Name = BenchmarkName;
  RNG Rng(hashName(BenchmarkName));

  int FnCount = 2 + static_cast<int>(Rng.nextBelow(3));
  for (int F = 0; F < FnCount; ++F) {
    IRFunction Fn;
    Fn.Name = BenchmarkName + "_fn" + std::to_string(F);
    addStraightLine(Fn, Rng);
    int Kernels = 1 + static_cast<int>(Rng.nextBelow(3));
    for (int K = 0; K < Kernels; ++K) {
      switch (Rng.nextBelow(5)) {
      case 0:
        addReductionLoop(Fn, Rng);
        break;
      case 1:
        addPointerChaseLoop(Fn, Rng);
        break;
      case 2:
        addBranchyLoop(Fn, Rng);
        break;
      case 3:
        addMulDivKernel(Fn, Rng);
        break;
      default:
        addCallKernel(Fn, Rng);
        break;
      }
    }
    IRBlock Exit;
    Exit.Name = "exit";
    IRInstr RetIt;
    RetIt.Op = IROp::Ret;
    Exit.Instrs.push_back(RetIt);
    Fn.Blocks.push_back(std::move(Exit));
    Module.Functions.push_back(std::move(Fn));
  }
  return Module;
}
