//===- tests/FeatureTest.cpp - vega_feature unit tests --------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "feature/FeatureSelector.h"
#include "lexer/Lexer.h"

#include <gtest/gtest.h>

using namespace vega;

namespace {

const BackendCorpus &sharedCorpus() {
  static BackendCorpus Corpus =
      BackendCorpus::build(TargetDatabase::standard());
  return Corpus;
}

const FeatureSelector &sharedSelector() {
  static FeatureSelector Selector = [] {
    std::vector<std::string> Names;
    for (const TargetTraits &T : sharedCorpus().targets().targets())
      Names.push_back(T.Name);
    return FeatureSelector(sharedCorpus().vfs(), Names);
  }();
  return Selector;
}

TemplateFeatures relocFeatures() {
  for (const FunctionGroup &G : sharedCorpus().trainingGroups())
    if (G.InterfaceName == "getRelocType") {
      FunctionTemplate FT = buildFunctionTemplate(G);
      return sharedSelector().analyze(FT);
    }
  return {};
}

} // namespace

TEST(FeatureSelector, PropListContainsTheMotivatingProperties) {
  const auto &Props = sharedSelector().propList();
  // The paper's §2.1.2 example: MCSymbolRefExpr (class), VariantKind (enum),
  // OperandType and Name (fields), MCFixupKind (enum).
  EXPECT_TRUE(Props.count("MCSymbolRefExpr"));
  EXPECT_TRUE(Props.count("VariantKind"));
  EXPECT_TRUE(Props.count("OperandType"));
  EXPECT_TRUE(Props.count("Name"));
  EXPECT_TRUE(Props.count("MCFixupKind"));
  EXPECT_TRUE(Props.count("ELF_RELOC"));
}

TEST(FeatureSelector, ReproducesFig3BoolProperties) {
  TemplateFeatures F = relocFeatures();
  const BoolProperty *Variant = F.findBool("VariantKind");
  ASSERT_NE(Variant, nullptr);
  EXPECT_TRUE(Variant->Updatable);
  EXPECT_TRUE(Variant->ValuePerTarget.at("ARM"));   // Fig. 3(b): T
  EXPECT_FALSE(Variant->ValuePerTarget.at("Mips")); // Fig. 3(b): F
  EXPECT_FALSE(Variant->ValuePerTarget.at("RISCV")); // Fig. 4(b): F
  EXPECT_EQ(Variant->IdentifiedSite, "llvm/MC/MCExpr.h");
  EXPECT_EQ(Variant->UpdateSitePerTarget.at("Mips"), ""); // NULL

  const BoolProperty *Operand = F.findBool("OperandType");
  ASSERT_NE(Operand, nullptr);
  EXPECT_TRUE(Operand->ValuePerTarget.at("ARM"));
  EXPECT_TRUE(Operand->ValuePerTarget.at("Mips"));
  EXPECT_TRUE(Operand->ValuePerTarget.at("RISCV"));

  const BoolProperty *SymExpr = F.findBool("MCSymbolRefExpr");
  ASSERT_NE(SymExpr, nullptr);
  EXPECT_FALSE(SymExpr->Updatable); // framework constant
}

TEST(FeatureSelector, SlotPropertiesForCaseRows) {
  for (const FunctionGroup &G : sharedCorpus().trainingGroups()) {
    if (G.InterfaceName != "getRelocType")
      continue;
    FunctionTemplate FT = buildFunctionTemplate(G);
    TemplateFeatures F = sharedSelector().analyze(FT);
    bool FoundFixupSlot = false, FoundRelocSlot = false, FoundNameSlot = false;
    for (const auto &[RowIdx, Slots] : F.RowSlots) {
      for (const SlotProperty &S : Slots) {
        if (S.Name == "MCFixupKind")
          FoundFixupSlot = true;
        if (S.Name == "ELF_RELOC")
          FoundRelocSlot = true;
        if (S.Name == "Name")
          FoundNameSlot = true;
      }
    }
    EXPECT_TRUE(FoundFixupSlot);
    EXPECT_TRUE(FoundRelocSlot);
    EXPECT_TRUE(FoundNameSlot);
  }
}

TEST(FeatureSelector, HarvestMCFixupKind) {
  auto Values = sharedSelector().harvestValues("MCFixupKind", "RISCV");
  ASSERT_FALSE(Values.empty());
  for (const std::string &V : Values) {
    EXPECT_EQ(V.rfind("fixup_riscv_", 0), 0u) << V;
    EXPECT_EQ(V.rfind("Last", 0), std::string::npos) << "sentinel leaked";
  }
  EXPECT_EQ(Values.size(), 10u);
}

TEST(FeatureSelector, HarvestRelocations) {
  auto Values = sharedSelector().harvestValues("ELF_RELOC", "XCORE");
  ASSERT_FALSE(Values.empty());
  for (const std::string &V : Values)
    EXPECT_EQ(V.rfind("R_XCORE_", 0), 0u) << V;
}

TEST(FeatureSelector, HarvestNameAndVariantKind) {
  EXPECT_EQ(sharedSelector().harvestValues("Name", "RISCV"),
            std::vector<std::string>{"RISCV"});
  auto VK = sharedSelector().harvestValues("VariantKind", "ARM");
  EXPECT_EQ(VK.size(), 5u);
  EXPECT_TRUE(sharedSelector().harvestValues("VariantKind", "Mips").empty());
}

TEST(FeatureSelector, HarvestInstructions) {
  auto Values = sharedSelector().harvestValues("Instruction", "RI5CY");
  // Core ops + hwloop + simd + compressed.
  EXPECT_GE(Values.size(), 17u);
}

TEST(FeatureSelector, HarvestUnknownPropertyIsEmpty) {
  EXPECT_TRUE(sharedSelector().harvestValues("NoSuchProp", "ARM").empty());
  EXPECT_TRUE(sharedSelector().harvestValues("Name", "NoSuchTarget").empty());
}

TEST(FeatureSelector, ClassifyFillerRules) {
  const FeatureSelector &S = sharedSelector();
  std::vector<Token> Ctx = Lexer::tokenize("case Kind getRelocType");
  // Rule 1: enum member (fixups correlate with MCFixupKind).
  Token Fixup(TokenKind::Identifier, "fixup_arm_movt_hi16");
  EXPECT_EQ(S.classifyFiller(Fixup, "ARM", Ctx), "MCFixupKind");
  // Rule 2: assignment value (Name = "ARM").
  Token NameTok(TokenKind::Identifier, "ARM");
  EXPECT_EQ(S.classifyFiller(NameTok, "ARM", Ctx), "Name");
  // Rule 3: record of a framework class.
  Token Instr(TokenKind::Identifier, "ADDrr");
  EXPECT_EQ(S.classifyFiller(Instr, "ARM", Ctx), "Instruction");
  // Rule 4: partial match ("ARMELFObjectWriter" vs Name="ARM").
  Token Writer(TokenKind::Identifier, "ARMELFObjectWriter");
  EXPECT_EQ(S.classifyFiller(Writer, "ARM", Ctx), "Name");
  // Unresolvable.
  Token Junk(TokenKind::Identifier, "zzz_unknown");
  EXPECT_EQ(S.classifyFiller(Junk, "ARM", Ctx), "");
}

// Sweep: every target's MCFixupKind harvest matches its trait fixups.
class HarvestTargetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(HarvestTargetTest, FixupHarvestMatchesTraits) {
  const std::string &Target = GetParam();
  const TargetTraits *T = sharedCorpus().targets().find(Target);
  ASSERT_NE(T, nullptr);
  auto Values = sharedSelector().harvestValues("MCFixupKind", Target);
  EXPECT_EQ(Values.size(), T->Fixups.size());
  auto Relocs = sharedSelector().harvestValues("ELF_RELOC", Target);
  // NONE + REL32 + one per fixup.
  EXPECT_EQ(Relocs.size(), T->Fixups.size() + 2);
  auto Name = sharedSelector().harvestValues("Name", Target);
  ASSERT_EQ(Name.size(), 1u);
  EXPECT_EQ(Name[0], Target);
}

INSTANTIATE_TEST_SUITE_P(AllTargets, HarvestTargetTest,
                         ::testing::ValuesIn([] {
                           std::vector<std::string> Names;
                           for (const TargetTraits &T :
                                sharedCorpus().targets().targets())
                             Names.push_back(T.Name);
                           return Names;
                         }()),
                         [](const ::testing::TestParamInfo<std::string> &I) {
                           return I.param;
                         });
