//===- model/Trainer.cpp - Data-parallel fine-tuning engine ----------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "model/Trainer.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/RNG.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <unordered_set>

using namespace vega;
using namespace vega::model;

TrainOptions TrainOptions::fromConfig(const CodeBEConfig &Config) {
  TrainOptions T;
  T.Epochs = Config.Epochs;
  T.BatchSize = Config.BatchSize;
  T.LearningRate = Config.LearningRate;
  T.Seed = Config.Seed;
  T.Jobs = 1;
  return T;
}

Status TrainOptions::validate() const {
  if (Epochs < 0)
    return Status::invalidArgument("TrainOptions.Epochs must be >= 0, got " +
                                   std::to_string(Epochs));
  if (BatchSize < 1)
    return Status::invalidArgument(
        "TrainOptions.BatchSize must be >= 1, got " +
        std::to_string(BatchSize));
  if (!std::isfinite(LearningRate) || LearningRate <= 0.0f)
    return Status::invalidArgument(
        "TrainOptions.LearningRate must be a positive finite value, got " +
        std::to_string(LearningRate));
  for (size_t I = 0; I < ExampleWeights.size(); ++I)
    if (!std::isfinite(ExampleWeights[I]) || ExampleWeights[I] < 0.0f)
      return Status::invalidArgument(
          "TrainOptions.ExampleWeights[" + std::to_string(I) +
          "] must be a finite non-negative value, got " +
          std::to_string(ExampleWeights[I]));
  return Status::ok();
}

Trainer::Trainer(CodeBE &Model, TrainOptions Opts)
    : Model(Model), Opts(std::move(Opts)) {}

namespace {

/// Appends the interior tape nodes reachable from \p Root (those carrying
/// a backward closure) to \p Out. These are the batch-shared nodes —
/// combined embeddings and their mixture — that every example tape hangs
/// off; each GradSink needs a private buffer for them so concurrent
/// backward passes never write shared memory. Leaves (the parameters) are
/// tracked separately by the caller.
void appendSharedTapeNodes(const TensorPtr &Root,
                           std::unordered_set<const Tensor *> &Seen,
                           std::vector<TensorPtr> &Out) {
  if (!Seen.insert(Root.get()).second)
    return;
  for (const TensorPtr &P : Root->Parents)
    appendSharedTapeNodes(P, Seen, Out);
  if (Root->Backward)
    Out.push_back(Root);
}

std::string formatDouble(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.4f", V);
  return Buf;
}

} // namespace

StatusOr<TrainResult> Trainer::run(const std::vector<TrainPair> &Data) {
  if (Status St = Opts.validate(); !St.isOk())
    return St;
  if (!Opts.ExampleWeights.empty() &&
      Opts.ExampleWeights.size() != Data.size())
    return Status::invalidArgument(
        "TrainOptions.ExampleWeights has " +
        std::to_string(Opts.ExampleWeights.size()) + " entries for " +
        std::to_string(Data.size()) + " examples");

  using Clock = std::chrono::steady_clock;
  const Clock::time_point RunStart = Clock::now();

  ThreadPool Pool(Opts.Jobs);
  std::vector<TensorPtr> Params = Model.parameters();
  AdamOptimizer Optimizer(Params, Opts.LearningRate);
  RNG Shuffler(Opts.Seed ^ 0x5eedULL);
  std::vector<size_t> Order(Data.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;

  const size_t B = static_cast<size_t>(Opts.BatchSize);
  std::vector<GradSink> Sinks(B);
  std::vector<float> BatchLoss(B, 0.0f);
  auto &Metrics = obs::MetricsRegistry::instance();

  TrainResult Result;
  Result.JobsUsed = static_cast<int>(Pool.jobs());

  for (int Epoch = 0; Epoch < Opts.Epochs; ++Epoch) {
    obs::Span EpochSpan("stage2.epoch", "stage2");
    EpochSpan.arg("epoch", std::to_string(Epoch));
    Shuffler.shuffle(Order);
    double LossSum = 0.0;
    size_t Count = 0;
    size_t BatchIndex = 0;
    // Each slot carries its example's loss weight alongside the pair, so
    // weights ride through the epoch shuffle with their examples.
    std::vector<std::pair<const TrainPair *, float>> Batch;
    Batch.reserve(B);

    auto flushBatch = [&] {
      if (Batch.empty())
        return;
      obs::Span BatchSpan("stage2.batch", "stage2");
      BatchSpan.arg("batch", std::to_string(BatchIndex));
      BatchSpan.arg("examples", std::to_string(Batch.size()));
      // The combined-embeddings subtree is identical for every example in
      // the batch (parameters only move at step()), so build it once and
      // share the node across all example tapes instead of recomputing the
      // vocab-sized mixture per example.
      TensorPtr Comb = Model.combinedEmbeddings();
      std::vector<TensorPtr> Tracked = Params;
      {
        std::unordered_set<const Tensor *> Seen;
        appendSharedTapeNodes(Comb, Seen, Tracked);
      }
      for (size_t S = 0; S < Batch.size(); ++S)
        Sinks[S].track(Tracked);
      Pool.parallelFor(Batch.size(), [&](size_t I) {
        GradSink::Scope Active(Sinks[I]);
        Sinks[I].zero();
        TensorPtr Loss = Model.trainLoss(*Batch[I].first, Comb);
        if (!Loss) {
          // Unreachable for batched pairs (empty sides are filtered before
          // batching; truncation never empties a non-empty sequence), but
          // keep the lane well-defined.
          BatchLoss[I] = 0.0f;
          return;
        }
        // Per-example weighting: scale the scalar loss before the backward
        // pass so the whole gradient carries the weight. Weight 1.0 skips
        // the node — the tape (and therefore the trained bits) is exactly
        // the legacy one.
        if (float W = Batch[I].second; W != 1.0f)
          Loss = scale(Loss, W);
        backward(Loss);
        BatchLoss[I] = Loss->Data[0];
      });
      // Fixed-order reduction: each parameter folds its per-example sink
      // buffers in ascending example order. Parallel across parameters
      // (disjoint destinations), serial within one — the summed gradient
      // is bit-identical no matter how many lanes ran the examples.
      Pool.parallelFor(Params.size(), [&](size_t P) {
        float *G = Params[P]->Grad.data();
        const size_t N = Params[P]->Data.size();
        for (size_t S = 0; S < Batch.size(); ++S) {
          const float *Buf = Sinks[S].bufferAt(P).data();
          for (size_t I = 0; I < N; ++I)
            G[I] += Buf[I];
        }
      });
      Optimizer.step();
      Metrics.addCounter("train.batches");
      for (size_t S = 0; S < Batch.size(); ++S)
        LossSum += BatchLoss[S];
      Count += Batch.size();
      ++BatchIndex;
      Batch.clear();
    };

    for (size_t Idx : Order) {
      const TrainPair &Pair = Data[Idx];
      // Same skip rule the serial loop applied: pairs with an empty side
      // are untrainable and never consume a batch slot.
      if (Pair.Src.empty() || Pair.Dst.empty())
        continue;
      float W =
          Opts.ExampleWeights.empty() ? 1.0f : Opts.ExampleWeights[Idx];
      Batch.emplace_back(&Pair, W);
      if (Batch.size() >= B)
        flushBatch();
    }
    flushBatch();
    Model.CombDirty = true;
    Model.QCombDirty = true;

    double MeanLoss = Count ? LossSum / static_cast<double>(Count) : 0.0;
    double Seconds = EpochSpan.seconds();
    double Rate = Seconds > 0.0 ? static_cast<double>(Count) / Seconds : 0.0;
    Metrics.addCounter("train.epochs");
    Metrics.addCounter("train.examples", Count);
    // One histogram sample per epoch: exports keep the whole loss curve
    // instead of a last-write-wins gauge.
    Metrics.observe("train.epoch_loss", MeanLoss); // shape declared centrally
    Metrics.setGauge("train.examples_per_sec", Rate);
    EpochSpan.arg("mean_loss", formatDouble(MeanLoss));
    EpochSpan.arg("examples_per_sec", formatDouble(Rate));

    Result.EpochMeanLoss.push_back(MeanLoss);
    Result.ExamplesSeen += Count;
    Result.FinalMeanLoss = MeanLoss;
    if (Opts.OnEpoch) {
      EpochStats Stats;
      Stats.Epoch = Epoch;
      Stats.MeanLoss = MeanLoss;
      Stats.Examples = Count;
      Stats.Seconds = Seconds;
      Stats.ExamplesPerSec = Rate;
      Opts.OnEpoch(Stats);
    }
  }
  Model.CombDirty = true;
  Model.QCombDirty = true;

  Result.EpochsRun = Opts.Epochs;
  Result.Seconds =
      std::chrono::duration<double>(Clock::now() - RunStart).count();
  Result.ExamplesPerSec =
      Result.Seconds > 0.0
          ? static_cast<double>(Result.ExamplesSeen) / Result.Seconds
          : 0.0;
  return Result;
}
