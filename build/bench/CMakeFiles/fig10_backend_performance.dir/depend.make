# Empty dependencies file for fig10_backend_performance.
# This may be replaced when dependencies are built.
