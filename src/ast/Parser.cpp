//===- ast/Parser.cpp - Statement-tree parser ------------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "ast/Parser.h"

#include "lexer/Lexer.h"

#include <cassert>

using namespace vega;

namespace {

/// Recursive-descent statement parser over a token buffer.
class StatementParser {
public:
  StatementParser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  const Token &peek(size_t Ahead = 0) const {
    static const Token Eof(TokenKind::EndOfFile, "");
    return Pos + Ahead < Tokens.size() ? Tokens[Pos + Ahead] : Eof;
  }
  bool atEnd() const { return Pos >= Tokens.size(); }
  Token take() { return Tokens[Pos++]; }

  /// Collects tokens until one of the terminators at bracket depth 0; the
  /// terminator is included in the result.
  std::vector<Token> takeUntilTerminator(bool StopAtColon) {
    std::vector<Token> Collected;
    int Depth = 0;
    while (!atEnd()) {
      const Token &T = peek();
      if (T.isPunct("(") || T.isPunct("["))
        ++Depth;
      else if (T.isPunct(")") || T.isPunct("]"))
        --Depth;
      Collected.push_back(take());
      const Token &Taken = Collected.back();
      if (Depth > 0)
        continue;
      if (Taken.isPunct(";") || Taken.isPunct("{"))
        break;
      if (StopAtColon && Taken.isPunct(":"))
        break;
    }
    return Collected;
  }

  /// Parses statements of a brace block; consumes the closing '}'. An
  /// "else" right after the '}' is left for the enclosing list, where it
  /// becomes a sibling of its if.
  std::vector<std::unique_ptr<Statement>> parseBlock() {
    std::vector<std::unique_ptr<Statement>> Stmts;
    while (!atEnd()) {
      if (peek().isPunct("}")) {
        take();
        return Stmts;
      }
      Stmts.push_back(parseStatement());
    }
    return Stmts;
  }

  std::unique_ptr<Statement> parseElse() {
    assert(peek().isKeyword("else") && "parseElse expects 'else'");
    std::vector<Token> Header = takeUntilTerminator(/*StopAtColon=*/false);
    StmtKind Kind = StmtKind::Else;
    for (const Token &T : Header)
      if (T.isKeyword("if")) {
        Kind = StmtKind::ElseIf;
        break;
      }
    auto Stmt = std::make_unique<Statement>(Kind, std::move(Header));
    if (!Stmt->Tokens.empty() && Stmt->Tokens.back().isPunct("{"))
      Stmt->Children = parseBlock();
    return Stmt;
  }

  std::unique_ptr<Statement> parseStatement() {
    if (peek().isKeyword("case") || peek().isKeyword("default"))
      return parseCaseLabel();
    if (peek().isKeyword("else"))
      return parseElse();

    std::vector<Token> Header = takeUntilTerminator(/*StopAtColon=*/false);
    StmtKind Kind = classifyStatement(Header);
    auto Stmt = std::make_unique<Statement>(Kind, std::move(Header));
    if (!Stmt->Tokens.empty() && Stmt->Tokens.back().isPunct("{"))
      Stmt->Children = parseBlock();
    return Stmt;
  }

  std::unique_ptr<Statement> parseCaseLabel() {
    bool IsDefault = peek().isKeyword("default");
    std::vector<Token> Header = takeUntilTerminator(/*StopAtColon=*/true);
    auto Stmt = std::make_unique<Statement>(
        IsDefault ? StmtKind::Default : StmtKind::Case, std::move(Header));
    // The label owns the statements until the next label or the switch's
    // closing brace (left unconsumed for the parseBlock above).
    while (!atEnd() && !peek().isPunct("}") && !peek().isKeyword("case") &&
           !peek().isKeyword("default"))
      Stmt->Children.push_back(parseStatement());
    return Stmt;
  }

private:
  std::vector<Token> Tokens;
  size_t Pos = 0;
};

bool isTypeToken(const Token &T) {
  if (T.Kind == TokenKind::Keyword)
    return T.Text == "unsigned" || T.Text == "signed" || T.Text == "int" ||
           T.Text == "bool" || T.Text == "char" || T.Text == "short" ||
           T.Text == "long" || T.Text == "float" || T.Text == "double" ||
           T.Text == "void" || T.Text == "auto" || T.Text == "const";
  return false;
}

} // namespace

StmtKind vega::classifyStatement(const std::vector<Token> &Tokens) {
  if (Tokens.empty())
    return StmtKind::Other;
  const Token &First = Tokens.front();
  if (First.isKeyword("if"))
    return StmtKind::If;
  if (First.isKeyword("else")) {
    for (const Token &T : Tokens)
      if (T.isKeyword("if"))
        return StmtKind::ElseIf;
    return StmtKind::Else;
  }
  if (First.isKeyword("switch"))
    return StmtKind::Switch;
  if (First.isKeyword("case"))
    return StmtKind::Case;
  if (First.isKeyword("default"))
    return StmtKind::Default;
  if (First.isKeyword("return"))
    return StmtKind::Return;
  if (First.isKeyword("break"))
    return StmtKind::Break;

  bool EndsWithSemicolon = Tokens.back().isPunct(";");
  bool HasTopLevelAssign = false;
  int Depth = 0;
  for (const Token &T : Tokens) {
    if (T.isPunct("(") || T.isPunct("["))
      ++Depth;
    else if (T.isPunct(")") || T.isPunct("]"))
      --Depth;
    else if (Depth == 0 && T.isPunct("="))
      HasTopLevelAssign = true;
  }
  if (EndsWithSemicolon) {
    if (HasTopLevelAssign) {
      // "unsigned Kind = ..." or "auto X = ..." is a declaration; a leading
      // identifier-identifier pair ("MCFixupKind Kind = ...") also declares.
      if (isTypeToken(First))
        return StmtKind::Decl;
      if (Tokens.size() >= 2 && First.Kind == TokenKind::Identifier &&
          Tokens[1].Kind == TokenKind::Identifier)
        return StmtKind::Decl;
      return StmtKind::Assign;
    }
    // "foo(...);" or "obj.method(...);" or "Ns::fn(...);"
    for (const Token &T : Tokens)
      if (T.isPunct("("))
        return StmtKind::Call;
  }
  // Function definition: "type qual::name(args) ... {"
  if (!Tokens.empty() && Tokens.back().isPunct("{")) {
    bool HasParens = false;
    for (const Token &T : Tokens)
      if (T.isPunct("(")) {
        HasParens = true;
        break;
      }
    if (HasParens && (isTypeToken(First) ||
                      First.Kind == TokenKind::Identifier))
      return StmtKind::FunctionDef;
  }
  return StmtKind::Other;
}

Expected<FunctionAST> vega::parseFunction(std::string_view Source) {
  std::vector<Token> Tokens = Lexer::tokenize(Source);
  if (Tokens.empty())
    return makeError<FunctionAST>("empty function source");

  // The definition statement runs to the first '{' at bracket depth 0.
  size_t DefEnd = 0;
  int Depth = 0;
  for (; DefEnd < Tokens.size(); ++DefEnd) {
    const Token &T = Tokens[DefEnd];
    if (T.isPunct("(") || T.isPunct("["))
      ++Depth;
    else if (T.isPunct(")") || T.isPunct("]"))
      --Depth;
    else if (Depth == 0 && T.isPunct("{"))
      break;
  }
  if (DefEnd == Tokens.size())
    return makeError<FunctionAST>("function has no body");

  FunctionAST Function;
  Function.Definition.Kind = StmtKind::FunctionDef;
  Function.Definition.Tokens.assign(Tokens.begin(),
                                    Tokens.begin() + DefEnd + 1);

  // Name: the identifier immediately before the first '(' of the signature;
  // qualifier: the identifier before the preceding '::'.
  for (size_t I = 0; I + 1 <= DefEnd; ++I) {
    if (!Tokens[I].isPunct("("))
      continue;
    if (I >= 1 && Tokens[I - 1].Kind == TokenKind::Identifier)
      Function.Name = Tokens[I - 1].Text;
    if (I >= 3 && Tokens[I - 2].isPunct("::") &&
        Tokens[I - 3].Kind == TokenKind::Identifier)
      Function.Qualifier = Tokens[I - 3].Text;
    break;
  }
  if (Function.Name.empty())
    return makeError<FunctionAST>("cannot find function name in definition");

  StatementParser Parser(
      std::vector<Token>(Tokens.begin() + DefEnd + 1, Tokens.end()));
  Function.Body = Parser.parseBlock();
  return Function;
}

Statement vega::parseStatementLine(std::string_view Line) {
  std::vector<Token> Tokens = Lexer::tokenize(Line);
  // Classify before moving: argument evaluation order is unspecified.
  StmtKind Kind = classifyStatement(Tokens);
  return Statement(Kind, std::move(Tokens));
}
