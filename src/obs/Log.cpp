//===- obs/Log.cpp - Structured NDJSON logging -------------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

using namespace vega;
using namespace vega::obs;

const char *obs::logLevelName(LogLevel Level) {
  switch (Level) {
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  case LogLevel::Off:
    return "off";
  }
  return "off";
}

std::optional<LogLevel> Logger::parseLevel(const std::string &Name) {
  if (Name == "debug")
    return LogLevel::Debug;
  if (Name == "info")
    return LogLevel::Info;
  if (Name == "warn" || Name == "warning")
    return LogLevel::Warn;
  if (Name == "error")
    return LogLevel::Error;
  if (Name == "off" || Name == "none")
    return LogLevel::Off;
  return std::nullopt;
}

Logger::Logger() : Level(static_cast<uint8_t>(LogLevel::Off)) {
  if (const char *Env = std::getenv("VEGA_LOG"))
    if (std::optional<LogLevel> L = parseLevel(Env))
      Level.store(static_cast<uint8_t>(*L), std::memory_order_relaxed);
}

Logger &Logger::instance() {
  static Logger L;
  return L;
}

void Logger::setSink(std::ostream *NewSink) {
  std::lock_guard<std::mutex> Lock(Mu);
  Sink = NewSink;
}

void Logger::log(LogLevel L, const std::string &Event, const Json &Fields) {
  if (!enabled(L))
    return;
  double Ts = std::chrono::duration<double>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count();
  Json Line = Json::object();
  // Millisecond timestamp resolution keeps the line stable under %.6g-style
  // double formatting of large epoch values.
  char TsBuf[40];
  std::snprintf(TsBuf, sizeof(TsBuf), "%.3f", Ts);
  Line.set("ts", Json(std::string(TsBuf)));
  Line.set("level", logLevelName(L));
  Line.set("event", Event);
  if (Fields.isObject())
    for (const auto &[Key, Value] : Fields.fields())
      Line.set(Key, Value);

  std::string Out = Line.dump();
  Out += '\n';
  std::lock_guard<std::mutex> Lock(Mu);
  if (Sink) {
    (*Sink) << Out << std::flush;
  } else {
    std::fwrite(Out.data(), 1, Out.size(), stderr);
    std::fflush(stderr);
  }
}
