file(REMOVE_RECURSE
  "CMakeFiles/fig9_statement_accuracy.dir/fig9_statement_accuracy.cpp.o"
  "CMakeFiles/fig9_statement_accuracy.dir/fig9_statement_accuracy.cpp.o.d"
  "fig9_statement_accuracy"
  "fig9_statement_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_statement_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
