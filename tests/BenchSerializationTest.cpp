//===- tests/BenchSerializationTest.cpp - backend cache round trip --------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "ast/Parser.h"
#include "lexer/Lexer.h"

#include <gtest/gtest.h>

using namespace vega;

namespace {

GeneratedBackend sampleBackend() {
  GeneratedBackend GB;
  GB.TargetName = "RISCV";
  GB.ModuleSeconds[BackendModule::EMI] = 1.25;
  GB.ModuleSeconds[BackendModule::SEL] = 3.5;

  GeneratedFunction F;
  F.InterfaceName = "getNumFixupKinds";
  F.Module = BackendModule::EMI;
  F.Emitted = true;
  F.Confidence = 0.95;
  F.MultiTargetDerived = true;
  F.Seconds = 0.4;
  auto AST = parseFunction("unsigned RISCVAsmBackend::getNumFixupKinds() "
                           "const {\n return RISCV::NumTargetFixupKinds;\n}");
  F.AST = std::move(*AST);
  GeneratedStatement S;
  S.RowIndex = 1;
  S.Confidence = 0.85;
  S.Emitted = true;
  S.Tokens = Lexer::tokenize("return RISCV::NumTargetFixupKinds;");
  F.Statements.push_back(S);
  GB.Functions.push_back(std::move(F));

  GeneratedFunction Missing;
  Missing.InterfaceName = "fillDelaySlots";
  Missing.Module = BackendModule::SCH;
  Missing.Emitted = false;
  Missing.Confidence = 0.1;
  GB.Functions.push_back(std::move(Missing));
  return GB;
}

} // namespace

TEST(BenchSerialization, RoundTripPreservesEverything) {
  GeneratedBackend GB = sampleBackend();
  std::string Blob = bench::serializeBackend(GB);
  GeneratedBackend Back;
  ASSERT_TRUE(bench::deserializeBackend(Blob, Back));

  EXPECT_EQ(Back.TargetName, "RISCV");
  ASSERT_EQ(Back.Functions.size(), 2u);
  const GeneratedFunction &F = Back.Functions[0];
  EXPECT_EQ(F.InterfaceName, "getNumFixupKinds");
  EXPECT_EQ(F.Module, BackendModule::EMI);
  EXPECT_TRUE(F.Emitted);
  EXPECT_NEAR(F.Confidence, 0.95, 1e-6);
  EXPECT_TRUE(F.MultiTargetDerived);
  EXPECT_EQ(F.AST.render(), GB.Functions[0].AST.render());
  ASSERT_EQ(F.Statements.size(), 1u);
  EXPECT_EQ(F.Statements[0].RowIndex, 1);
  EXPECT_NEAR(F.Statements[0].Confidence, 0.85, 1e-6);
  EXPECT_EQ(renderTokens(F.Statements[0].Tokens),
            "return RISCV::NumTargetFixupKinds;");

  EXPECT_FALSE(Back.Functions[1].Emitted);
  EXPECT_NEAR(Back.ModuleSeconds[BackendModule::EMI], 1.25, 1e-6);
  EXPECT_NEAR(Back.ModuleSeconds[BackendModule::SEL], 3.5, 1e-6);
}

TEST(BenchSerialization, RejectsGarbage) {
  GeneratedBackend Out;
  EXPECT_FALSE(bench::deserializeBackend("", Out));
  EXPECT_FALSE(bench::deserializeBackend("nonsense\nlines\n", Out));
}

TEST(BenchSerialization, EmptyBackendRejected) {
  GeneratedBackend GB;
  GB.TargetName = "RISCV";
  GeneratedBackend Out;
  EXPECT_FALSE(bench::deserializeBackend(bench::serializeBackend(GB), Out));
}
