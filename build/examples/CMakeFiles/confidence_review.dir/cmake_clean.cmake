file(REMOVE_RECURSE
  "CMakeFiles/confidence_review.dir/confidence_review.cpp.o"
  "CMakeFiles/confidence_review.dir/confidence_review.cpp.o.d"
  "confidence_review"
  "confidence_review.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confidence_review.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
