//===- eval/Harness.h - pass@1 and statement accuracy ------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation harness (§4.1.4): pass@1 function accuracy (a generated
/// function substitutes the golden one and must behave identically on the
/// regression environments), statement-level accuracy (Fig. 9 / Table 3),
/// the Err-V / Err-CS / Err-Def taxonomy (Table 2), and module aggregates.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_EVAL_HARNESS_H
#define VEGA_EVAL_HARNESS_H

#include "core/Pipeline.h"
#include "corpus/Corpus.h"
#include "eval/Oracle.h"

namespace vega {

/// Evaluation of one generated function against its golden counterpart.
struct FunctionEval {
  std::string InterfaceName;
  BackendModule Module = BackendModule::SEL;
  bool GoldenExists = false;
  bool Generated = false;   ///< VEGA emitted it
  bool Accurate = false;    ///< pass@1 verdict (primary oracle)
  double Confidence = 0.0;
  bool MultiTargetDerived = false;
  size_t GoldenStatements = 0;
  size_t AccurateStatements = 0; ///< generated statements matching golden
  size_t ManualStatements = 0;   ///< statements to fix/add/delete by hand
  bool ErrV = false;   ///< wrong target-specific value in a matched stmt
  bool ErrCS = false;  ///< confidence contradicts correctness
  bool ErrDef = false; ///< missing necessary statements / function

  // Behavioural-divergence classes, populated when a differential oracle
  // ran for this function (DiffRan). One failing randomized case lands in
  // exactly one class; the flags OR the per-case census.
  bool DivVal = false;  ///< wrong result value on a randomized input
  bool DivTrap = false; ///< trap/crash divergence on a randomized input
  bool DivEff = false;  ///< effect-trace divergence on a randomized input
  /// Textually different from golden yet behaviourally equal under the
  /// differential oracle — the over-penalized class: its ManualStatements
  /// are counted as manual effort by the plain statement accounting even
  /// though execution agrees everywhere sampled.
  bool TxtOnly = false;
  bool DiffRan = false;      ///< a differential oracle scored this function
  bool DiffAccurate = false; ///< its full-pass verdict
  size_t DiffCases = 0;      ///< randomized cases considered
  size_t DiffPassed = 0;     ///< randomized cases passed
};

/// Whole-backend evaluation.
struct BackendEval {
  std::string TargetName;
  /// The oracle(s) that produced the verdicts: "text", "differential", or
  /// "text+differential" when a differential classifier rode along.
  std::string OracleName = "text";
  std::vector<FunctionEval> Functions;

  struct ModuleStats {
    size_t Functions = 0;
    size_t AccurateFunctions = 0;
    size_t AccurateHighConfidence = 0; ///< accurate with CS ≈ 1.00
    size_t MultiTarget = 0;            ///< accurate & multi-target derived
    size_t AccurateStatements = 0;
    size_t ManualStatements = 0;
    size_t TxtOnlyFunctions = 0; ///< textually off, behaviourally equal
  };
  std::map<BackendModule, ModuleStats> PerModule;

  /// Function-level accuracy over all generated functions (paper headline).
  double functionAccuracy() const;
  /// Function-level accuracy within one module.
  double functionAccuracy(BackendModule Module) const;
  /// Statement-level accuracy over all modules.
  double statementAccuracy() const;
  /// Statement accuracy with Txt-Only functions un-penalized: their manual
  /// statements are behaviourally validated, so they count as accurate.
  /// Equals statementAccuracy() when no differential oracle ran.
  double adjustedStatementAccuracy() const;
  /// Error-type rates over all generated functions (Table 2).
  double errVRate() const;
  double errCSRate() const;
  double errDefRate() const;
  /// Divergence-class rates over the same population (0.0 when no
  /// differential oracle ran).
  double divValRate() const;
  double divTrapRate() const;
  double divEffRate() const;
  double txtOnlyRate() const;

  /// True when any function was scored by a differential oracle.
  bool hasDifferential() const;
  /// Function accuracy under the differential verdict (functions the
  /// differential oracle never ran for — unemitted or missing — count as
  /// failures, mirroring functionAccuracy()).
  double differentialAccuracy() const;

  /// Primary-vs-differential agreement over functions where both ran.
  struct OracleAgreement {
    size_t BothPass = 0;
    size_t BothFail = 0;
    size_t PrimaryOnlyPass = 0;      ///< the dangerous inverse
    size_t DifferentialOnlyPass = 0; ///< curated suite stricter than random
  };
  OracleAgreement agreement() const;
};

/// Evaluates \p Generated against \p Golden for \p Traits with the default
/// text oracle — a thin back-compat wrapper over the pluggable overload
/// below (byte-identical to the pre-oracle-API behaviour).
BackendEval evaluateBackend(const GeneratedBackend &Generated,
                            const Backend &Golden,
                            const TargetTraits &Traits);

/// Evaluates with an explicit oracle. \p Primary decides Accurate (and the
/// error taxonomy); when \p Differential is non-null it additionally scores
/// every emitted function, filling the Div-Val/Div-Trap/Div-Eff census,
/// the Txt-Only flag, and the agreement report. Pass the same object as
/// both to gate *and* classify with one differential run.
BackendEval evaluateBackend(const GeneratedBackend &Generated,
                            const Backend &Golden, const TargetTraits &Traits,
                            const eval::Oracle &Primary,
                            const eval::Oracle *Differential = nullptr);

/// pass@1 for a single function AST (used by ForkFlow too): behavioural
/// equivalence with the golden implementation on the regression suite.
bool functionPassesRegression(const FunctionAST &Candidate,
                              const FunctionAST &Golden,
                              const std::string &InterfaceName,
                              const TargetTraits &Traits);

/// Statement-level accounting between a candidate and the golden function:
/// (AccurateStatements, ManualStatements).
std::pair<size_t, size_t> statementAccounting(const FunctionAST &Candidate,
                                              const FunctionAST &Golden);

} // namespace vega

#endif // VEGA_EVAL_HARNESS_H
