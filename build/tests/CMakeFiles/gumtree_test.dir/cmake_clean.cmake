file(REMOVE_RECURSE
  "CMakeFiles/gumtree_test.dir/GumtreeTest.cpp.o"
  "CMakeFiles/gumtree_test.dir/GumtreeTest.cpp.o.d"
  "gumtree_test"
  "gumtree_test.pdb"
  "gumtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gumtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
