file(REMOVE_RECURSE
  "CMakeFiles/vega_templatize.dir/FunctionTemplate.cpp.o"
  "CMakeFiles/vega_templatize.dir/FunctionTemplate.cpp.o.d"
  "libvega_templatize.a"
  "libvega_templatize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_templatize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
