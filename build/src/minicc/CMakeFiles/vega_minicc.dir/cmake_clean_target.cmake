file(REMOVE_RECURSE
  "libvega_minicc.a"
)
