//===- interp/Interpreter.h - Backend-function interpreter -------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking interpreter over the statement AST of backend functions.
/// Test environments bind parameters and intrinsic call results; every call
/// the environment does not resolve becomes an *effect* recorded in the
/// trace. Two runs are behaviourally equivalent when status, return value,
/// and effect trace all agree — that is the pass@1 oracle.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_INTERP_INTERPRETER_H
#define VEGA_INTERP_INTERPRETER_H

#include "ast/Statement.h"
#include "interp/Value.h"

#include <functional>
#include <map>
#include <optional>
#include <vector>

namespace vega {

/// Bindings for one execution: variables, call results, and a fallback
/// intrinsic resolver.
class Environment {
public:
  /// Binds variable \p Name to \p V (parameters, test inputs).
  void bind(const std::string &Name, Value V) { Vars[Name] = std::move(V); }

  /// Binds the result of calling \p CalleeKey (e.g. "Fixup.getTargetKind").
  void bindCall(const std::string &CalleeKey, Value V) {
    Calls[CalleeKey] = std::move(V);
  }

  /// Fallback resolver consulted for unbound calls before they become
  /// effects; return std::nullopt to decline.
  using IntrinsicFn = std::function<std::optional<Value>(
      const std::string &Callee, const std::vector<Value> &Args)>;
  void setIntrinsic(IntrinsicFn Fn) { Intrinsic = std::move(Fn); }

  /// Assigns a numeric ordinal to symbol \p Name so relational operators
  /// work on enum members ("Kind < FirstTargetFixupKind").
  void setOrdinal(const std::string &Name, int64_t Ordinal) {
    Ordinals[Name] = Ordinal;
  }

  const std::map<std::string, Value> &vars() const { return Vars; }
  const std::map<std::string, Value> &calls() const { return Calls; }
  const IntrinsicFn &intrinsic() const { return Intrinsic; }
  const std::map<std::string, int64_t> &ordinals() const { return Ordinals; }

private:
  std::map<std::string, Value> Vars;
  std::map<std::string, Value> Calls;
  std::map<std::string, int64_t> Ordinals;
  IntrinsicFn Intrinsic;
};

/// Outcome of one execution.
struct ExecResult {
  enum class Status : uint8_t {
    Ok,    ///< function returned normally
    Trap,  ///< report_fatal_error was reached
    Error, ///< the interpreter rejected the program (bad condition, budget)
  };
  Status St = Status::Ok;
  Value Return;
  std::string Message; ///< trap/error message
  std::vector<std::string> Trace; ///< effects, in execution order

  /// Behavioural equivalence (the pass@1 comparison).
  bool equivalent(const ExecResult &O) const {
    if (St != O.St)
      return false;
    if (St == Status::Error)
      return true; // both rejected; callers usually treat Error as failure
    if (St == Status::Trap)
      return Message == O.Message && Trace == O.Trace;
    return Return == O.Return && Trace == O.Trace;
  }
};

/// The interpreter. Stateless across runs; cheap to construct.
class Interpreter {
public:
  /// Executes \p Fn under \p Env. \p StepBudget bounds the number of
  /// executed statements (guards against pathological generated code).
  ExecResult run(const FunctionAST &Fn, const Environment &Env,
                 int StepBudget = 4096) const;
};

} // namespace vega

#endif // VEGA_INTERP_INTERPRETER_H
