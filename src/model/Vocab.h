//===- model/Vocab.h - Token vocabulary for CodeBE ---------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CodeBE's token vocabulary. Tokens are whole corpus tokens; every token
/// additionally carries word-piece ids ("fixup_riscv_pcrel_hi20" →
/// {fixup, riscv, pcrel, hi20}) so embeddings compose for tokens never seen
/// during fine-tuning — the laptop-scale stand-in for UniXcoder's BPE
/// subwords. Includes the special tokens of §2.2 ([CLS], [SEP], [E2D], the
/// confidence-score buckets) plus [PAD]/[EOS]/[NULL]/[T]/[F]/[UNK].
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_MODEL_VOCAB_H
#define VEGA_MODEL_VOCAB_H

#include <map>
#include <string>
#include <vector>

namespace vega {

/// Growable token vocabulary with piece decomposition. Freeze before
/// training (the embedding matrices size to it).
class Vocab {
public:
  Vocab();

  // Special token spellings.
  static constexpr const char *Pad = "[PAD]";
  static constexpr const char *Unk = "[UNK]";
  static constexpr const char *Cls = "[CLS]";
  static constexpr const char *Sep = "[SEP]";
  static constexpr const char *E2d = "[E2D]";
  static constexpr const char *Eos = "[EOS]";
  static constexpr const char *Null = "[NULL]";
  static constexpr const char *True = "[T]";
  static constexpr const char *False = "[F]";
  // Segment markers of the feature-vector layout (§2.2.1).
  static constexpr const char *Bools = "[BOOLS]";
  static constexpr const char *Vals = "[VALS]";
  static constexpr const char *Path = "[PATH]";
  static constexpr const char *Ctx = "[CTX]";

  /// True when \p Text is a bracketed special token.
  static bool isSpecialSpelling(const std::string &Text) {
    return !Text.empty() && Text.front() == '[' && Text.back() == ']';
  }

  /// Number of confidence-score buckets (0.00 … 1.00 in steps of 0.05).
  static constexpr int NumCsBuckets = 21;

  /// The bucket index for a confidence score in [0, 1].
  static int csBucket(double Score);

  /// The spelling of a CS bucket token ("[CS_17]").
  static std::string csToken(int Bucket);

  /// Bucket midpoint value of a CS token id, or -1 when \p Id is not a CS
  /// token.
  double csValueOf(int Id) const;

  /// True when \p Id is a CS bucket token.
  bool isCsToken(int Id) const;

  /// Adds (or finds) \p Text; returns its id.
  int addToken(const std::string &Text);

  /// Id of \p Text, or the [UNK] id when unknown.
  int idOf(const std::string &Text) const;

  /// True when \p Text is known.
  bool contains(const std::string &Text) const;

  /// Spelling of token \p Id.
  const std::string &textOf(int Id) const;

  size_t size() const { return Tokens.size(); }
  size_t pieceCount() const { return PieceCount; }

  /// Per-token piece id lists (parallel to token ids).
  const std::vector<std::vector<int>> &pieceLists() const { return Pieces; }

  int padId() const { return PadId; }
  int unkId() const { return UnkId; }
  int clsId() const { return ClsId; }
  int sepId() const { return SepId; }
  int e2dId() const { return E2dId; }
  int eosId() const { return EosId; }
  int nullId() const { return NullId; }
  int trueId() const { return TrueId; }
  int falseId() const { return FalseId; }
  int csId(int Bucket) const { return CsBase + Bucket; }

  /// Serializes / restores the vocabulary (token spellings only; pieces are
  /// recomputed).
  std::string serialize() const;
  static Vocab deserialize(const std::string &Blob);

private:
  std::vector<std::string> Tokens;
  std::map<std::string, int> Index;
  std::vector<std::vector<int>> Pieces;
  std::map<std::string, int> PieceIndex;
  size_t PieceCount = 0;
  int PadId, UnkId, ClsId, SepId, E2dId, EosId, NullId, TrueId, FalseId;
  int CsBase;
};

} // namespace vega

#endif // VEGA_MODEL_VOCAB_H
