//===- minicc/Hooks.h - Backend hooks driving the compiler -------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini compiler's target-dependent behaviour is routed through a small
/// hook table. Hooks can be derived directly from a target's traits (the
/// base compiler) or by *interpreting* backend functions — golden or
/// VEGA-generated — which is how a generated/repaired backend actually
/// drives compilation in the §4.3 experiments.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_MINICC_HOOKS_H
#define VEGA_MINICC_HOOKS_H

#include "ast/Statement.h"
#include "corpus/TargetTraits.h"

#include <functional>
#include <map>

namespace vega {

/// Target-dependent knobs the compiler consults.
struct BackendHooks {
  /// Latency of an instruction class in cycles.
  std::function<int(InstrClass)> Latency;
  bool PostRAScheduler = false;
  bool HardwareLoops = false;
  int VectorWidth = 0;
  int StackAlignment = 8;
  int BranchLatency = 2;
};

/// Hooks straight from traits (the base compiler's behaviour).
BackendHooks hooksFromTraits(const TargetTraits &Traits);

/// Hooks obtained by interpreting backend functions. \p Functions maps
/// interface names ("getInstrLatency", "enablePostRAScheduler",
/// "isHardwareLoopProfitable", "getVectorRegisterWidth") to ASTs; missing
/// or misbehaving entries fall back to conservative defaults, so a broken
/// generated function shows up as a performance (not correctness) delta.
BackendHooks
hooksFromFunctions(const TargetTraits &Traits,
                   const std::map<std::string, const FunctionAST *> &Functions);

} // namespace vega

#endif // VEGA_MINICC_HOOKS_H
