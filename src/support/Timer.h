//===- support/Timer.h - Wall-clock timing -----------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trivial wall-clock timer for the inference-time measurements (Fig. 7).
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SUPPORT_TIMER_H
#define VEGA_SUPPORT_TIMER_H

#include <chrono>

namespace vega {

/// Measures elapsed wall-clock seconds from construction (or reset()).
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the measurement window.
  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds since construction/reset.
  double milliseconds() const { return seconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace vega

#endif // VEGA_SUPPORT_TIMER_H
