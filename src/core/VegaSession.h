//===- core/VegaSession.h - The session-level library API --------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public face of the library: a VegaSession owns a trained VegaSystem
/// and exposes the whole lifecycle behind Status-returning entry points —
///
///   build(corpus, opts)  Stage 1 + Stage 2 (strict: a mismatched weight
///                        cache is an error, not a silent retrain)
///   save(path)           write the .vega artifact (core/Checkpoint.h)
///   load(path)           restore a generation-ready session without
///                        re-touching Stage 1/2
///   generate(target)     Stage 3 for one target
///   generateMany(...)    batched Stage 3 (one pool fan-out, deterministic
///                        per-target merges — the vega-serve engine)
///
/// Consumers map Status to their own error surface: vega-cli turns codes
/// into process exit codes, vega-serve into JSON-RPC error objects.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_CORE_VEGASESSION_H
#define VEGA_CORE_VEGASESSION_H

#include "core/Pipeline.h"
#include "support/Status.h"

#include <memory>
#include <string>
#include <vector>

namespace vega {

/// A built-or-loaded VEGA session. Create via build() or load(); the
/// returned session is immediately ready for generate().
class VegaSession {
public:
  /// The process-wide standard corpus (BackendCorpus::build over
  /// TargetDatabase::standard()), built on first use.
  static const BackendCorpus &standardCorpus();

  /// Runs Stage 1 + Stage 2 over \p Corpus. Unlike VegaSystem::trainModel(),
  /// a weight cache that exists but does not match the current vocabulary or
  /// architecture is a FailedPrecondition error — a session built from a
  /// cache must be exactly the session that wrote it.
  static StatusOr<std::unique_ptr<VegaSession>> build(const BackendCorpus &Corpus,
                                                      VegaOptions Opts);
  /// build() over the standard corpus.
  static StatusOr<std::unique_ptr<VegaSession>> build(VegaOptions Opts);

  /// Restores a session from a .vega artifact (strict: see Checkpoint.h).
  static StatusOr<std::unique_ptr<VegaSession>>
  load(const BackendCorpus &Corpus, const std::string &Path);
  /// load() over the standard corpus.
  static StatusOr<std::unique_ptr<VegaSession>> load(const std::string &Path);

  /// Writes the .vega artifact for this session.
  Status save(const std::string &Path) const;

  /// Stage 3 for one target. NotFound for targets absent from the corpus.
  StatusOr<GeneratedBackend> generate(const std::string &Target);

  /// A per-request generation in flight (see VegaSystem::GenerationHandle):
  /// the target's function templates as independent decode units.
  using GenerationHandle = VegaSystem::GenerationHandle;

  /// Opens a generation handle for \p Target. NotFound for targets absent
  /// from the corpus. Drive it with step() (serial) or hand it to the serve
  /// scheduler, then fold it with finish(); finish() on a fresh handle is
  /// exactly generate().
  StatusOr<GenerationHandle> beginGenerate(const std::string &Target);

  /// Runs the next pending unit of \p Handle inline; false when none left.
  bool step(GenerationHandle &Handle) { return System->stepGenerate(Handle); }

  /// Completes \p Handle (running any remaining units) and returns the
  /// backend — byte-identical to generate() for the same target.
  StatusOr<GeneratedBackend> finish(GenerationHandle Handle) {
    return System->finishGenerate(std::move(Handle));
  }

  /// Batched Stage 3: all targets share one pool fan-out; each returned
  /// backend is byte-identical to a standalone generate() call. A thin
  /// validation wrapper over VegaSystem::generateBackends, which itself
  /// drives the handle API — batch, serial-step, and scheduler paths are
  /// one code path.
  StatusOr<std::vector<GeneratedBackend>>
  generateMany(const std::vector<std::string> &Targets);

  /// Overrides the Stage-3 lane count (0 = auto).
  void setJobs(int Jobs) { System->setJobs(Jobs); }

  /// Selects the inference precision (runtime knob — .vega artifacts always
  /// store fp32 weights and are byte-identical under either setting, so a
  /// loaded session can switch freely).
  void setPrecision(Precision P) { System->setPrecision(P); }
  Precision precision() const {
    return System->options().InferencePrecision;
  }

  /// Toggles the prefix-sharing decode fast paths (byte-identical output
  /// either way).
  void setPrefixSharing(bool On) { System->setPrefixSharing(On); }
  bool prefixSharing() const { return System->options().PrefixSharing; }

  const BackendCorpus &corpus() const { return Corpus; }
  VegaSystem &system() { return *System; }
  const VegaSystem &system() const { return *System; }
  /// True when this session came from load() rather than build().
  bool loadedFromCheckpoint() const { return FromCheckpoint; }

private:
  VegaSession(const BackendCorpus &Corpus, std::unique_ptr<VegaSystem> System,
              bool FromCheckpoint)
      : Corpus(Corpus), System(std::move(System)),
        FromCheckpoint(FromCheckpoint) {}

  const BackendCorpus &Corpus;
  std::unique_ptr<VegaSystem> System;
  bool FromCheckpoint = false;
};

} // namespace vega

#endif // VEGA_CORE_VEGASESSION_H
