//===- eval/EvalSpecs.cpp - Regression-test environments --------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "eval/EvalSpecs.h"

#include "corpus/GoldenBackend.h"

using namespace vega;

namespace {

/// Spellings used by the golden sources; environments must bind the same
/// spellings so symbols compare equal.
std::string fixupSym(const TargetTraits &T, const FixupInfo &F) {
  return T.Name + "::" + F.Name;
}

void setFixupOrdinals(Environment &Env, const TargetTraits &T) {
  Env.setOrdinal("FK_NONE", 0);
  Env.setOrdinal("FK_Data_1", 1);
  Env.setOrdinal("FK_Data_2", 2);
  Env.setOrdinal("FK_Data_4", 3);
  Env.setOrdinal("FK_Data_8", 4);
  Env.setOrdinal("FirstTargetFixupKind", 128);
  int64_t Ord = 128;
  for (const FixupInfo &F : T.Fixups)
    Env.setOrdinal(fixupSym(T, F), Ord++);
}

/// getRelocType: every fixup kind (plus generic data kinds) × IsPCRel ×
/// access variant.
std::vector<Environment> specGetRelocType(const TargetTraits &T) {
  std::vector<Environment> Envs;
  std::vector<std::string> Kinds = {"FK_Data_4"};
  if (T.Is64Bit)
    Kinds.push_back("FK_Data_8");
  for (const FixupInfo &F : T.Fixups)
    Kinds.push_back(fixupSym(T, F));

  std::vector<std::string> Variants = {T.Name + "MC::VK_" + T.Name + "_None"};
  if (T.HasVariantKind)
    Variants.push_back(T.Name + "MC::VK_" + T.Name + "_GOT");

  for (const std::string &Kind : Kinds) {
    for (bool IsPCRel : {false, true}) {
      for (const std::string &Variant : Variants) {
        Environment Env;
        Env.bindCall("Fixup.getTargetKind", Value::symbol(Kind));
        Env.bind("IsPCRel", Value::boolean(IsPCRel));
        Env.bindCall("Target.getAccessVariant", Value::symbol(Variant));
        setFixupOrdinals(Env, T);
        Envs.push_back(std::move(Env));
      }
    }
  }
  return Envs;
}

std::vector<Environment> specApplyFixup(const TargetTraits &T) {
  std::vector<Environment> Envs;
  for (const FixupInfo &F : T.Fixups) {
    for (int64_t V : {int64_t(0), int64_t(0x1234)}) {
      Environment Env;
      Env.bindCall("Fixup.getTargetKind", Value::symbol(fixupSym(T, F)));
      Env.bindCall("Fixup.getOffset", Value::integer(8));
      Env.bind("Value", Value::integer(V));
      Env.setIntrinsic([](const std::string &Callee,
                          const std::vector<Value> &Args)
                           -> std::optional<Value> {
        if (Callee == "getFixupNumBytes")
          return Value::integer(4);
        if (Callee == "adjustFixupValue" && Args.size() == 2)
          return Args[1];
        return std::nullopt;
      });
      setFixupOrdinals(Env, T);
      Envs.push_back(std::move(Env));
    }
  }
  return Envs;
}

std::vector<Environment> specEncodeInstruction(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs;
  for (int64_t Size : {int64_t(2), int64_t(4)}) {
    Environment Env;
    Env.bindCall("getBinaryCodeForInstr", Value::integer(0xabcd));
    Env.bindCall("getInstSizeInBytes", Value::integer(Size));
    Envs.push_back(std::move(Env));
  }
  return Envs;
}

std::vector<Environment> specGetFixupKindInfo(const TargetTraits &T) {
  std::vector<Environment> Envs;
  std::vector<std::string> Kinds = {"FK_Data_4"};
  for (const FixupInfo &F : T.Fixups)
    Kinds.push_back(fixupSym(T, F));
  for (const std::string &Kind : Kinds) {
    Environment Env;
    Env.bind("Kind", Value::symbol(Kind));
    setFixupOrdinals(Env, T);
    Env.bindCall("getGenericFixupKindInfo",
                 Value::symbol("#generic-fixup-info"));
    Envs.push_back(std::move(Env));
  }
  return Envs;
}

std::vector<Environment> specNeedsRelocate(const TargetTraits &T) {
  std::vector<Environment> Envs;
  std::vector<std::string> Types = {"ELF::R_" + [&] {
    std::string U;
    for (char C : T.Name)
      U += static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
    return U;
  }() + "_NONE"};
  for (const FixupInfo &F : T.Fixups)
    Types.push_back("ELF::" + F.Reloc);
  for (const std::string &Type : Types) {
    Environment Env;
    Env.bind("Type", Value::symbol(Type));
    Envs.push_back(std::move(Env));
  }
  return Envs;
}

std::vector<Environment> specGetTargetNodeName(const TargetTraits &T) {
  std::vector<Environment> Envs;
  for (const IsdNodeInfo &N : T.IsdNodes) {
    Environment Env;
    Env.bind("Opcode", Value::symbol(T.Name + "ISD::" + N.Name));
    Envs.push_back(std::move(Env));
  }
  Environment Unknown;
  Unknown.bind("Opcode", Value::symbol("ISD::ADD"));
  Envs.push_back(std::move(Unknown));
  return Envs;
}

std::vector<Environment> boolGrid(const std::vector<std::string> &CallKeys) {
  // All combinations of boolean call results for the given keys.
  std::vector<Environment> Envs;
  size_t N = CallKeys.size();
  for (size_t Bits = 0; Bits < (size_t(1) << N); ++Bits) {
    Environment Env;
    for (size_t I = 0; I < N; ++I)
      Env.bindCall(CallKeys[I], Value::boolean((Bits >> I) & 1));
    Envs.push_back(std::move(Env));
  }
  return Envs;
}

void bindEach(std::vector<Environment> &Envs, const std::string &Key,
              Value V) {
  for (Environment &Env : Envs)
    Env.bindCall(Key, V);
}

std::vector<Environment> specLowerCall(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs(1);
  bindEach(Envs, "CI.getGlobal", Value::symbol("g"));
  return Envs;
}

std::vector<Environment> specLowerReturn(const TargetTraits &T) {
  (void)T;
  return boolGrid({"CI.hasReturnValue"});
}

std::vector<Environment> specLowerGlobalAddress(const TargetTraits &T) {
  (void)T;
  return boolGrid({"DAG.isPositionIndependent"});
}

std::vector<Environment> specLowerSelectCC(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs = boolGrid({"DAG.isConstantCondition"});
  bindEach(Envs, "DAG.getCondition", Value::symbol("cond"));
  return Envs;
}

std::vector<Environment> specSelectAddrFI(const TargetTraits &T) {
  (void)T;
  return boolGrid({"DAG.isFrameIndex", "DAG.isShortOffset"});
}

std::vector<Environment> specIsLegalICmpImmediate(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs;
  for (int64_t Imm : {int64_t(0), int64_t(100), int64_t(511), int64_t(512),
                      int64_t(-512), int64_t(-513), int64_t(2047),
                      int64_t(2048), int64_t(-2048), int64_t(-2049),
                      int64_t(32767), int64_t(32768), int64_t(-32768),
                      int64_t(1048575), int64_t(1048576), int64_t(1 << 21)}) {
    Environment Env;
    Env.bind("Imm", Value::integer(Imm));
    Envs.push_back(std::move(Env));
  }
  return Envs;
}

std::vector<Environment> specGetRegisterByName(const TargetTraits &T) {
  std::vector<Environment> Envs;
  std::vector<std::string> Names;
  auto Lower = [](const std::string &S) {
    std::string Out;
    for (char C : S)
      Out += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    return Out;
  };
  Names.push_back(Lower(T.StackPointer));
  Names.push_back(Lower(T.ReturnAddressReg));
  Names.push_back("nosuchreg");
  for (const std::string &Name : Names) {
    Environment Env;
    Env.bind("RegName", Value::symbol(Name));
    Envs.push_back(std::move(Env));
  }
  return Envs;
}

std::vector<Environment> specGetReservedRegs(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs = boolGrid({"getFrameLowering().hasFP"});
  bindEach(Envs, "getFrameLowering", Value::symbol("FL"));
  return Envs;
}

std::vector<Environment> specGetCalleeSavedRegs(const TargetTraits &T) {
  (void)T;
  return boolGrid({"MF.hasVectorArguments"});
}

std::vector<Environment> specGetFrameRegister(const TargetTraits &T) {
  return specGetReservedRegs(T);
}

std::vector<Environment> specEliminateFrameIndex(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs;
  for (int64_t Offset : {int64_t(0), int64_t(60), int64_t(4000),
                         int64_t(400000), int64_t(-4)}) {
    Environment Env;
    Env.bind("SPAdj", Value::integer(0));
    Env.bind("FIOperandNum", Value::integer(1));
    Env.bindCall("MI.getOperand", Value::integer(2));
    Env.setIntrinsic([Offset](const std::string &Callee,
                              const std::vector<Value> &)
                         -> std::optional<Value> {
      if (Callee == "getFrameIndexOffset")
        return Value::integer(Offset);
      return std::nullopt;
    });
    Envs.push_back(std::move(Env));
  }
  return Envs;
}

std::vector<Environment> specCanRealignStack(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs;
  for (bool VarSized : {false, true}) {
    for (int64_t Size : {int64_t(64), int64_t(1000)}) {
      Environment Env;
      Env.bindCall("MF.hasVarSizedObjects", Value::boolean(VarSized));
      Env.bindCall("MF.getFrameSize", Value::integer(Size));
      Envs.push_back(std::move(Env));
    }
  }
  return Envs;
}

std::vector<Environment> specEmitPrologueEpilogue(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs;
  for (int64_t Size : {int64_t(0), int64_t(24), int64_t(100)}) {
    for (bool HasFP : {false, true}) {
      Environment Env;
      Env.bindCall("MF.getFrameSize", Value::integer(Size));
      Env.bindCall("hasFP", Value::boolean(HasFP));
      Env.setIntrinsic([](const std::string &Callee,
                          const std::vector<Value> &Args)
                           -> std::optional<Value> {
        if (Callee == "computeThreadStackSize" && Args.size() == 2 &&
            Args[1].isInt())
          return Value::integer(Args[1].IntV + 16);
        return std::nullopt;
      });
      Envs.push_back(std::move(Env));
    }
  }
  return Envs;
}

std::vector<Environment> specHardwareLoopProfitable(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs;
  for (bool Const : {false, true}) {
    for (int64_t Blocks : {int64_t(1), int64_t(3)}) {
      Environment Env;
      Env.bindCall("L.hasConstantTripCount", Value::boolean(Const));
      Env.bindCall("L.getNumBlocks", Value::integer(Blocks));
      Envs.push_back(std::move(Env));
    }
  }
  return Envs;
}

std::vector<Environment> specConvertToHardwareLoop(const TargetTraits &T) {
  std::vector<Environment> Envs = specHardwareLoopProfitable(T);
  bindEach(Envs, "L.getTripCount", Value::integer(10));
  return Envs;
}

std::vector<Environment> specShouldCombineMemAccess(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs;
  for (int64_t Size : {int64_t(16), int64_t(64), int64_t(100), int64_t(200),
                       int64_t(600), int64_t(2000)}) {
    Environment Env;
    Env.bind("AccessSize", Value::integer(Size));
    Envs.push_back(std::move(Env));
  }
  return Envs;
}

std::vector<Environment> specIsProfitableToHoist(const TargetTraits &T) {
  std::vector<Environment> Envs;
  for (const InstrInfo &I : T.Instructions) {
    if (I.Class != InstrClass::Div && I.Class != InstrClass::Alu &&
        I.Class != InstrClass::Mul)
      continue;
    Environment Env;
    Env.bindCall("MI.getOpcode", Value::symbol(T.Name + "::" + I.Name));
    Envs.push_back(std::move(Env));
  }
  return Envs;
}

std::vector<Environment> specCombineRedundantMove(const TargetTraits &T) {
  std::vector<Environment> Envs;
  const InstrInfo *Mov = T.findInstr(InstrClass::Mov);
  const InstrInfo *Alu = T.findInstr(InstrClass::Alu);
  for (const InstrInfo *I : {Mov, Alu}) {
    if (!I)
      continue;
    for (bool Same : {false, true}) {
      Environment Env;
      Env.bindCall("MI.getOpcode", Value::symbol(T.Name + "::" + I->Name));
      Env.setIntrinsic([Same](const std::string &Callee,
                              const std::vector<Value> &Args)
                           -> std::optional<Value> {
        if (Callee == "MI.getOperand" && !Args.empty() && Args[0].isInt())
          return Value::integer(Same ? 7 : 7 + Args[0].IntV);
        return std::nullopt;
      });
      Envs.push_back(std::move(Env));
    }
  }
  return Envs;
}

std::vector<Environment> specGetLoopAlignment(const TargetTraits &T) {
  (void)T;
  return boolGrid({"L.isHardwareLoop"});
}

std::vector<Environment> specGetInstrLatency(const TargetTraits &T) {
  std::vector<Environment> Envs;
  for (const InstrInfo &I : T.Instructions) {
    Environment Env;
    Env.bindCall("MI.getOpcode", Value::symbol(T.Name + "::" + I.Name));
    Envs.push_back(std::move(Env));
  }
  return Envs;
}

std::vector<Environment> specShouldScheduleLoadsNear(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs;
  for (int64_t D : {int64_t(0), int64_t(1), int64_t(2), int64_t(3),
                    int64_t(5)}) {
    Environment Env;
    Env.bind("Distance", Value::integer(D));
    Envs.push_back(std::move(Env));
  }
  return Envs;
}

std::vector<Environment> specFillDelaySlots(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs =
      boolGrid({"hasUnfilledSlot", "isSafeToMove"});
  bindEach(Envs, "findDelayFiller", Value::symbol("filler"));
  return Envs;
}

std::vector<Environment> specGetHazardType(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs;
  for (bool Branch : {false, true}) {
    for (bool Call : {false, true}) {
      for (int64_t Stalls : {int64_t(0), int64_t(1), int64_t(2), int64_t(3)}) {
        Environment Env;
        Env.bindCall("MI.isBranch", Value::boolean(Branch));
        Env.bindCall("MI.isCall", Value::boolean(Call));
        Env.bind("Stalls", Value::integer(Stalls));
        Envs.push_back(std::move(Env));
      }
    }
  }
  return Envs;
}

std::vector<Environment> specIsSchedulingBoundary(const TargetTraits &T) {
  std::vector<Environment> Envs;
  std::vector<std::string> Opcodes;
  if (const InstrInfo *Alu = T.findInstr(InstrClass::Alu))
    Opcodes.push_back(T.Name + "::" + Alu->Name);
  for (const InstrInfo &I : T.Instructions)
    if (I.Name == "msync")
      Opcodes.push_back(T.Name + "::" + I.Name);
  for (bool Call : {false, true}) {
    for (const std::string &Op : Opcodes) {
      Environment Env;
      Env.bindCall("MI.isCall", Value::boolean(Call));
      Env.bindCall("MI.getOpcode", Value::symbol(Op));
      Envs.push_back(std::move(Env));
    }
  }
  return Envs;
}

std::vector<Environment> specParseRegister(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs;
  for (int64_t Reg : {int64_t(5), int64_t(0)}) {
    for (int64_t AltReg : {int64_t(0), int64_t(7)}) {
      Environment Env;
      Env.bindCall("getLexer", Value::symbol("LEX"));
      Env.bindCall("getLexer().getIdentifier", Value::symbol("r3"));
      Env.setIntrinsic([Reg, AltReg](const std::string &Callee,
                                     const std::vector<Value> &)
                           -> std::optional<Value> {
        if (Callee == "matchRegisterName")
          return Value::integer(Reg);
        if (Callee == "matchResourceRegister")
          return Value::integer(AltReg);
        return std::nullopt;
      });
      Envs.push_back(std::move(Env));
    }
  }
  return Envs;
}

std::vector<Environment> specParseImmediate(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs;
  for (bool IsInt : {false, true}) {
    for (int64_t V : {int64_t(5), int64_t(70000), int64_t(-70000),
                      int64_t(300), int64_t(-300)}) {
      Environment Env;
      Env.bindCall("getLexer", Value::symbol("LEX"));
      Env.bindCall("getLexer().isInteger", Value::boolean(IsInt));
      Env.bindCall("getLexer().getIntegerValue", Value::integer(V));
      Envs.push_back(std::move(Env));
    }
  }
  return Envs;
}

std::vector<Environment> specParseOperand(const TargetTraits &T) {
  (void)T;
  return boolGrid({"parseRegister", "parseModifier", "parseImmediate"});
}

std::vector<Environment> specMatchAndEmit(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs;
  for (const char *Result : {"Match_Success", "Match_MissingFeature",
                             "Match_InvalidOperand"}) {
    Environment Env;
    Env.bindCall("matchInstruction", Value::symbol(Result));
    Envs.push_back(std::move(Env));
  }
  return Envs;
}

std::vector<Environment> specParseDirective(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs;
  for (const char *Directive : {".long", ".word", ".cc_top", ".unknown"}) {
    Environment Env;
    Env.bind("IDVal", Value::symbol(Directive));
    Envs.push_back(std::move(Env));
  }
  return Envs;
}

std::vector<Environment> specGetInstruction(const TargetTraits &T) {
  (void)T;
  std::vector<Environment> Envs;
  for (bool Compressed : {false, true}) {
    for (const char *Result : {"MCDisassembler::Success",
                               "MCDisassembler::Fail"}) {
      Environment Env;
      Env.bindCall("isCompressedInstruction", Value::boolean(Compressed));
      std::string R = Result;
      Env.setIntrinsic([R](const std::string &Callee,
                           const std::vector<Value> &)
                           -> std::optional<Value> {
        if (Callee == "decodeInstruction32" || Callee == "decodeInstruction16")
          return Value::symbol(R);
        return std::nullopt;
      });
      Envs.push_back(std::move(Env));
    }
  }
  return Envs;
}

std::vector<Environment> specDecodeGPR(const TargetTraits &T) {
  std::vector<Environment> Envs;
  for (int64_t RegNo : {int64_t(0), int64_t(5),
                        int64_t(T.RegisterCount - 1),
                        int64_t(T.RegisterCount), int64_t(200)}) {
    Environment Env;
    Env.bind("RegNo", Value::integer(RegNo));
    Envs.push_back(std::move(Env));
  }
  return Envs;
}

std::vector<Environment> specReadInstruction32(const TargetTraits &T) {
  (void)T;
  return {Environment()};
}

std::vector<Environment> specTrivial(const TargetTraits &T) {
  (void)T;
  return {Environment()};
}

} // namespace

std::vector<Environment>
vega::buildTestEnvironments(const std::string &InterfaceName,
                            const TargetTraits &Traits) {
  if (InterfaceName == "getRelocType")
    return specGetRelocType(Traits);
  if (InterfaceName == "applyFixup")
    return specApplyFixup(Traits);
  if (InterfaceName == "encodeInstruction")
    return specEncodeInstruction(Traits);
  if (InterfaceName == "getNumFixupKinds")
    return specTrivial(Traits);
  if (InterfaceName == "getFixupKindInfo")
    return specGetFixupKindInfo(Traits);
  if (InterfaceName == "needsRelocateWithSymbol")
    return specNeedsRelocate(Traits);
  if (InterfaceName == "getTargetNodeName")
    return specGetTargetNodeName(Traits);
  if (InterfaceName == "lowerCall")
    return specLowerCall(Traits);
  if (InterfaceName == "lowerReturn")
    return specLowerReturn(Traits);
  if (InterfaceName == "lowerGlobalAddress")
    return specLowerGlobalAddress(Traits);
  if (InterfaceName == "lowerSelectCC")
    return specLowerSelectCC(Traits);
  if (InterfaceName == "selectAddrFI")
    return specSelectAddrFI(Traits);
  if (InterfaceName == "isLegalICmpImmediate")
    return specIsLegalICmpImmediate(Traits);
  if (InterfaceName == "getRegisterByName")
    return specGetRegisterByName(Traits);
  if (InterfaceName == "getReservedRegs")
    return specGetReservedRegs(Traits);
  if (InterfaceName == "getCalleeSavedRegs")
    return specGetCalleeSavedRegs(Traits);
  if (InterfaceName == "getFrameRegister")
    return specGetFrameRegister(Traits);
  if (InterfaceName == "eliminateFrameIndex")
    return specEliminateFrameIndex(Traits);
  if (InterfaceName == "requiresRegisterScavenging")
    return specTrivial(Traits);
  if (InterfaceName == "canRealignStack")
    return specCanRealignStack(Traits);
  if (InterfaceName == "emitPrologue" || InterfaceName == "emitEpilogue")
    return specEmitPrologueEpilogue(Traits);
  if (InterfaceName == "isHardwareLoopProfitable")
    return specHardwareLoopProfitable(Traits);
  if (InterfaceName == "convertToHardwareLoop")
    return specConvertToHardwareLoop(Traits);
  if (InterfaceName == "getVectorRegisterWidth")
    return specTrivial(Traits);
  if (InterfaceName == "shouldCombineMemAccess")
    return specShouldCombineMemAccess(Traits);
  if (InterfaceName == "isProfitableToHoist")
    return specIsProfitableToHoist(Traits);
  if (InterfaceName == "combineRedundantMove")
    return specCombineRedundantMove(Traits);
  if (InterfaceName == "getLoopAlignment")
    return specGetLoopAlignment(Traits);
  if (InterfaceName == "getInstrLatency")
    return specGetInstrLatency(Traits);
  if (InterfaceName == "enablePostRAScheduler")
    return specTrivial(Traits);
  if (InterfaceName == "shouldScheduleLoadsNear")
    return specShouldScheduleLoadsNear(Traits);
  if (InterfaceName == "fillDelaySlots")
    return specFillDelaySlots(Traits);
  if (InterfaceName == "getHazardType")
    return specGetHazardType(Traits);
  if (InterfaceName == "isSchedulingBoundary")
    return specIsSchedulingBoundary(Traits);
  if (InterfaceName == "parseRegister")
    return specParseRegister(Traits);
  if (InterfaceName == "parseImmediate")
    return specParseImmediate(Traits);
  if (InterfaceName == "parseOperand")
    return specParseOperand(Traits);
  if (InterfaceName == "matchAndEmitInstruction")
    return specMatchAndEmit(Traits);
  if (InterfaceName == "parseDirective")
    return specParseDirective(Traits);
  if (InterfaceName == "getInstruction")
    return specGetInstruction(Traits);
  if (InterfaceName == "decodeGPRRegisterClass")
    return specDecodeGPR(Traits);
  if (InterfaceName == "readInstruction32")
    return specReadInstruction32(Traits);
  return specTrivial(Traits);
}

size_t vega::regressionCaseCount(const TargetTraits &Traits) {
  size_t Count = 0;
  for (const InterfaceFunctionSpec &Spec : interfaceFunctions()) {
    if (!Spec.AppliesTo(Traits))
      continue;
    Count += buildTestEnvironments(Spec.Name, Traits).size();
  }
  return Count;
}
