//===- tests/SupportTest.cpp - vega_support unit tests -----------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include "support/RNG.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"
#include "support/ThreadPool.h"
#include "support/VirtualFileSystem.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>

using namespace vega;

TEST(StringUtils, SplitKeepsEmptyPieces) {
  auto Pieces = splitString("a,,b", ',');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[1], "");
  EXPECT_EQ(Pieces[2], "b");
}

TEST(StringUtils, SplitDropsEmptyWhenAsked) {
  auto Pieces = splitString("::a::b::", ':', /*KeepEmpty=*/false);
  ASSERT_EQ(Pieces.size(), 2u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[1], "b");
}

TEST(StringUtils, SplitLinesHandlesCRLFAndTrailingNewline) {
  auto Lines = splitLines("one\r\ntwo\nthree\n");
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_EQ(Lines[0], "one");
  EXPECT_EQ(Lines[1], "two");
  EXPECT_EQ(Lines[2], "three");
}

TEST(StringUtils, TrimRemovesSurroundingWhitespaceOnly) {
  EXPECT_EQ(trimString("  a b \t"), "a b");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("   "), "");
}

TEST(StringUtils, JoinInterleavesSeparator) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, "::"), "a::b::c");
  EXPECT_EQ(joinStrings({}, ","), "");
}

TEST(StringUtils, ContainsIgnoreCase) {
  EXPECT_TRUE(containsIgnoreCase("OPERAND_PCREL", "pcrel"));
  EXPECT_FALSE(containsIgnoreCase("abc", "abcd"));
  EXPECT_TRUE(containsIgnoreCase("anything", ""));
}

TEST(StringUtils, PartialMatchRequiresThreeChars) {
  EXPECT_FALSE(partiallyMatches("ab", "abcdef"));
  EXPECT_TRUE(partiallyMatches("ARM", "ARMELFObjectWriter"));
  EXPECT_TRUE(partiallyMatches("ARMELFObjectWriter", "ARM"));
  EXPECT_FALSE(partiallyMatches("RISCV", "Mips"));
}

TEST(StringUtils, IdentifierWordSplitting) {
  auto Words = splitIdentifierWords("IsPCRel");
  ASSERT_EQ(Words.size(), 3u);
  EXPECT_EQ(Words[0], "is");
  EXPECT_EQ(Words[1], "pc");
  EXPECT_EQ(Words[2], "rel");

  Words = splitIdentifierWords("fixup_riscv_pcrel_hi20");
  ASSERT_EQ(Words.size(), 4u);
  EXPECT_EQ(Words[1], "riscv");
  EXPECT_EQ(Words[3], "hi20");
}

TEST(StringUtils, IdentifierSimilarityBounds) {
  EXPECT_DOUBLE_EQ(identifierSimilarity("getRelocType", "getRelocType"), 1.0);
  EXPECT_GT(identifierSimilarity("getRelocType", "getRelocKind"), 0.4);
  EXPECT_DOUBLE_EQ(identifierSimilarity("abc", ""), 0.0);
}

TEST(StringUtils, SharedStemConnectsPCRelSpellings) {
  // The paper's IsPCRel ↔ OPERAND_PCREL partial match.
  EXPECT_TRUE(sharesSignificantStem("IsPCRel", "OPERAND_PCREL"));
  EXPECT_FALSE(sharesSignificantStem("Kind", "OPERAND_PCREL"));
  EXPECT_TRUE(sharesSignificantStem("ARMELFObjectWriter", "Name_ARM_x", 3));
}

TEST(StringUtils, ReplaceAllReplacesEveryOccurrence) {
  EXPECT_EQ(replaceAll("Mips::fixup_mips", "Mips", "RISCV"),
            "RISCV::fixup_mips");
  EXPECT_EQ(replaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replaceAll("abc", "", "x"), "abc");
}

TEST(RNG, DeterministicAcrossInstances) {
  RNG A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, BoundedValues) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(R.nextBelow(10), 10u);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNG, ShuffleIsAPermutation) {
  RNG R(3);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  auto Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(VirtualFileSystem, AddGetRoundTrip) {
  VirtualFileSystem VFS;
  VFS.addFile("lib/Target/ARM/ARM.td", "def ARM");
  ASSERT_TRUE(VFS.getFile("lib/Target/ARM/ARM.td").has_value());
  EXPECT_EQ(*VFS.getFile("lib/Target/ARM/ARM.td"), "def ARM");
  EXPECT_FALSE(VFS.getFile("lib/Target/ARM/Other.td").has_value());
}

TEST(VirtualFileSystem, NormalizesPaths) {
  VirtualFileSystem VFS;
  VFS.addFile("./a//b/c.h", "x");
  EXPECT_TRUE(VFS.exists("a/b/c.h"));
  EXPECT_TRUE(VFS.exists("/a/b/c.h"));
}

TEST(VirtualFileSystem, DirectoryPrefixQueriesAreExact) {
  VirtualFileSystem VFS;
  VFS.addFile("lib/Target/ARM/ARM.td", "1");
  VFS.addFile("lib/Target/ARM64/ARM64.td", "2");
  auto Files = VFS.filesUnder("lib/Target/ARM");
  ASSERT_EQ(Files.size(), 1u);
  EXPECT_EQ(Files[0]->Path, "lib/Target/ARM/ARM.td");
}

TEST(VirtualFileSystem, ExtensionFiltering) {
  VirtualFileSystem VFS;
  VFS.addFile("d/a.td", "");
  VFS.addFile("d/b.h", "");
  VFS.addFile("d/c.td", "");
  EXPECT_EQ(VFS.filesUnderWithExtension("d", ".td").size(), 2u);
  EXPECT_EQ(VFS.filesUnderWithExtension("d", ".h").size(), 1u);
}

TEST(VirtualFileSystem, AppendCreatesOrExtends) {
  VirtualFileSystem VFS;
  VFS.appendToFile("x.txt", "a");
  VFS.appendToFile("x.txt", "b");
  EXPECT_EQ(*VFS.getFile("x.txt"), "ab");
}

TEST(VirtualFileSystem, RemoveFile) {
  VirtualFileSystem VFS;
  VFS.addFile("x", "1");
  EXPECT_TRUE(VFS.removeFile("x"));
  EXPECT_FALSE(VFS.removeFile("x"));
  EXPECT_FALSE(VFS.exists("x"));
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable Table;
  Table.setHeader({"Name", "Value"});
  Table.addRow({"alpha", "1"});
  Table.addRow({"b", "22"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("Name"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  // Numeric column right-aligned: "22" should line up under " 1".
  EXPECT_NE(Out.find("22"), std::string::npos);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(TextTable::formatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::formatPercent(0.715), "71.5%");
}

TEST(Expected, SuccessAndError) {
  Expected<int> Ok(42);
  ASSERT_TRUE(Ok);
  EXPECT_EQ(*Ok, 42);
  Expected<int> Err = makeError<int>("nope");
  EXPECT_FALSE(Err);
  EXPECT_EQ(Err.getError(), "nope");
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.jobs(), 4u);
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, SerialFastPathWithOneJob) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.jobs(), 1u);
  std::vector<size_t> Order;
  Pool.parallelFor(5, [&](size_t I) { Order.push_back(I); });
  // jobs=1 runs inline on the caller in ascending order — the exact
  // pre-pool serial code path.
  ASSERT_EQ(Order.size(), 5u);
  for (size_t I = 0; I < 5; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ThreadPool, LaneIdsStayInRange) {
  ThreadPool Pool(3);
  EXPECT_EQ(ThreadPool::currentLane(), -1);
  std::atomic<bool> Bad{false};
  Pool.parallelFor(64, [&](size_t) {
    int Lane = ThreadPool::currentLane();
    if (Lane < 0 || Lane >= 3)
      Bad = true;
  });
  EXPECT_FALSE(Bad.load());
  EXPECT_EQ(ThreadPool::currentLane(), -1);
}

TEST(ThreadPool, ReduceMatchesSerialFoldBitForBit) {
  // parallelReduce folds partials in ascending index order, so the result
  // must be bit-identical to the plain serial loop regardless of lanes.
  auto Map = [](size_t I) {
    return 1.0f / static_cast<float>(I + 1); // order-sensitive f32 terms
  };
  float Serial = 0.0f;
  for (size_t I = 0; I < 512; ++I)
    Serial += Map(I);
  ThreadPool Pool(4);
  float Parallel = Pool.parallelReduce<float>(
      512, 0.0f, Map, [](float Acc, float V) { return Acc + V; });
  EXPECT_EQ(Serial, Parallel);
}

TEST(ThreadPool, ParallelMapPreservesIndexing) {
  ThreadPool Pool(2);
  std::vector<int> Out =
      Pool.parallelMap<int>(100, [](size_t I) { return static_cast<int>(I * I); });
  ASSERT_EQ(Out.size(), 100u);
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Out[I], static_cast<int>(I * I));
}

TEST(ThreadPool, FirstExceptionPropagatesToCaller) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(32,
                                [&](size_t I) {
                                  if (I == 7)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool stays usable after a failed batch.
  std::atomic<int> Count{0};
  Pool.parallelFor(8, [&](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 8);
}

TEST(ThreadPool, DefaultJobsHonorsEnvOverride) {
  setenv("VEGA_JOBS", "3", 1);
  EXPECT_EQ(ThreadPool::defaultJobs(), 3u);
  unsetenv("VEGA_JOBS");
  EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}
