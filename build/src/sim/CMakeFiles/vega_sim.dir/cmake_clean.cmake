file(REMOVE_RECURSE
  "CMakeFiles/vega_sim.dir/Simulator.cpp.o"
  "CMakeFiles/vega_sim.dir/Simulator.cpp.o.d"
  "libvega_sim.a"
  "libvega_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
