# Empty compiler generated dependencies file for verification_exact_match.
# This may be replaced when dependencies are built.
