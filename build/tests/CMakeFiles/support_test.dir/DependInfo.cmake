
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/support_test.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/support_test.dir/SupportTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/vega_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/forkflow/CMakeFiles/vega_forkflow.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vega_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/minicc/CMakeFiles/vega_minicc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vega_core.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/vega_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/feature/CMakeFiles/vega_feature.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vega_model.dir/DependInfo.cmake"
  "/root/repo/build/src/templatize/CMakeFiles/vega_templatize.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/vega_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/gumtree/CMakeFiles/vega_gumtree.dir/DependInfo.cmake"
  "/root/repo/build/src/tablegen/CMakeFiles/vega_tablegen.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/vega_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/vega_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vega_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
