//===- tests/GumtreeTest.cpp - vega_gumtree unit tests -------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "gumtree/LCS.h"
#include "gumtree/Matcher.h"

#include "ast/Parser.h"

#include <gtest/gtest.h>

using namespace vega;

TEST(LCS, BasicSubsequence) {
  std::vector<int> A = {1, 2, 3, 4, 5};
  std::vector<int> B = {2, 4, 5, 6};
  auto Pairs = longestCommonSubsequence(A, B);
  ASSERT_EQ(Pairs.size(), 3u);
  EXPECT_EQ(A[Pairs[0].first], 2);
  EXPECT_EQ(A[Pairs[1].first], 4);
  EXPECT_EQ(A[Pairs[2].first], 5);
}

TEST(LCS, EmptyInputs) {
  std::vector<int> A, B = {1};
  EXPECT_TRUE(longestCommonSubsequence(A, B).empty());
  EXPECT_TRUE(longestCommonSubsequence(B, A).empty());
}

TEST(LCS, IndicesStrictlyIncrease) {
  std::vector<int> A = {1, 1, 2, 1, 2};
  std::vector<int> B = {1, 2, 1, 2, 1};
  auto Pairs = longestCommonSubsequence(A, B);
  for (size_t I = 1; I < Pairs.size(); ++I) {
    EXPECT_GT(Pairs[I].first, Pairs[I - 1].first);
    EXPECT_GT(Pairs[I].second, Pairs[I - 1].second);
  }
  EXPECT_EQ(Pairs.size(), 4u);
}

TEST(LCS, CustomPredicate) {
  std::vector<std::string> A = {"Alpha", "BETA"};
  std::vector<std::string> B = {"alpha", "beta"};
  auto Pairs = longestCommonSubsequence(
      A, B, [](const std::string &X, const std::string &Y) {
        return X.size() == Y.size();
      });
  EXPECT_EQ(Pairs.size(), 2u);
}

TEST(Similarity, IdenticalStatementsScoreOne) {
  Statement A = parseStatementLine("return ELF::R_ARM_NONE;");
  Statement B = parseStatementLine("return ELF::R_ARM_NONE;");
  EXPECT_DOUBLE_EQ(statementSimilarity(A, B), 1.0);
}

TEST(Similarity, DifferentKindsArePenalized) {
  Statement A = parseStatementLine("return x;");
  Statement B = parseStatementLine("break;");
  EXPECT_LT(statementSimilarity(A, B), 0.5);
}

TEST(Hashing, SubtreeHashSeesChildren) {
  auto F1 = parseFunction("int f() {\n if (x) {\n return 1;\n }\n}");
  auto F2 = parseFunction("int f() {\n if (x) {\n return 2;\n }\n}");
  ASSERT_TRUE(static_cast<bool>(F1) && static_cast<bool>(F2));
  EXPECT_EQ(statementShapeHash(*F1->Body[0]), statementShapeHash(*F2->Body[0]));
  EXPECT_NE(statementSubtreeHash(*F1->Body[0]),
            statementSubtreeHash(*F2->Body[0]));
}

namespace {

const char *ArmReloc = R"(
unsigned ARMELFObjectWriter::getRelocType(const MCValue &Target, const MCFixup &Fixup, bool IsPCRel) const {
  unsigned Kind = Fixup.getTargetKind();
  MCSymbolRefExpr::VariantKind Modifier = Target.getAccessVariant();
  if (IsPCRel) {
    switch (Kind) {
    case ARM::fixup_arm_movt_hi16:
      return ELF::R_ARM_MOVT_PREL;
    default:
      report_fatal_error("invalid fixup kind");
    }
  }
  return ELF::R_ARM_NONE;
}
)";

const char *MipsReloc = R"(
unsigned MipsELFObjectWriter::getRelocType(const MCValue &Target, const MCFixup &Fixup, bool IsPCRel) const {
  unsigned Kind = Fixup.getTargetKind();
  if (IsPCRel) {
    switch (Kind) {
    case Mips::fixup_MIPS_HI16:
      return ELF::R_MIPS_HI16;
    default:
      report_fatal_error("invalid fixup kind");
    }
  }
  return ELF::R_MIPS_NONE;
}
)";

} // namespace

TEST(Matcher, AlignsThePaperExample) {
  auto A = parseFunction(ArmReloc);
  auto M = parseFunction(MipsReloc);
  ASSERT_TRUE(static_cast<bool>(A) && static_cast<bool>(M));
  TreeMapping Mapping = matchFunctions(*A, *M);

  // Definitions always match.
  EXPECT_EQ(Mapping.getDst(&A->Definition), &M->Definition);
  // S1 (the decl) matches S1.
  EXPECT_EQ(Mapping.getDst(A->Body[0].get()), M->Body[0].get());
  // ARM's VariantKind statement (S2) has no MIPS partner.
  EXPECT_EQ(Mapping.getDst(A->Body[1].get()), nullptr);
  // The if-statements match (ARM body index 2, MIPS body index 1).
  EXPECT_EQ(Mapping.getDst(A->Body[2].get()), M->Body[1].get());
}

TEST(Matcher, IdenticalFunctionsMatchCompletely) {
  auto A = parseFunction(ArmReloc);
  auto B = parseFunction(ArmReloc);
  ASSERT_TRUE(static_cast<bool>(A) && static_cast<bool>(B));
  TreeMapping Mapping = matchFunctions(*A, *B);
  EXPECT_EQ(Mapping.size(), A->size());
  for (const auto &FS : A->flatten())
    EXPECT_NE(Mapping.getDst(FS.Stmt), nullptr);
}

TEST(Matcher, MappingIsOneToOne) {
  auto A = parseFunction(ArmReloc);
  auto M = parseFunction(MipsReloc);
  ASSERT_TRUE(static_cast<bool>(A) && static_cast<bool>(M));
  TreeMapping Mapping = matchFunctions(*A, *M);
  std::set<const Statement *> Seen;
  for (const auto &FS : A->flatten()) {
    const Statement *Dst = Mapping.getDst(FS.Stmt);
    if (!Dst)
      continue;
    EXPECT_TRUE(Seen.insert(Dst).second) << "duplicate mapping target";
    EXPECT_EQ(Mapping.getSrc(Dst), FS.Stmt);
  }
}

TEST(Matcher, EmptyBodiesStillMatchDefinitions) {
  auto A = parseFunction("int f() {\n}");
  auto B = parseFunction("int f() {\n}");
  ASSERT_TRUE(static_cast<bool>(A) && static_cast<bool>(B));
  TreeMapping Mapping = matchFunctions(*A, *B);
  EXPECT_EQ(Mapping.size(), 1u);
}
