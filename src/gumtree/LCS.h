//===- gumtree/LCS.h - Longest common subsequence ----------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic longest-common-subsequence alignment. Used twice in the paper's
/// pipeline: to align matching statements inside a function group and to
/// split statement templates into common code and variant placeholders
/// (§3.2.1, "Longest Common Subsequence analysis of the ASTs").
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_GUMTREE_LCS_H
#define VEGA_GUMTREE_LCS_H

#include <cstddef>
#include <utility>
#include <vector>

namespace vega {

/// Computes LCS index pairs (I, J) such that Equal(A[I], B[J]) holds and the
/// pairs are strictly increasing in both components, maximizing pair count.
template <typename T, typename EqualFn>
std::vector<std::pair<size_t, size_t>>
longestCommonSubsequence(const std::vector<T> &A, const std::vector<T> &B,
                         EqualFn Equal) {
  const size_t N = A.size(), M = B.size();
  // DP table of LCS lengths for suffixes; (N+1) x (M+1).
  std::vector<unsigned> Table((N + 1) * (M + 1), 0);
  auto At = [&](size_t I, size_t J) -> unsigned & {
    return Table[I * (M + 1) + J];
  };
  for (size_t I = N; I-- > 0;) {
    for (size_t J = M; J-- > 0;) {
      if (Equal(A[I], B[J]))
        At(I, J) = At(I + 1, J + 1) + 1;
      else
        At(I, J) = std::max(At(I + 1, J), At(I, J + 1));
    }
  }
  std::vector<std::pair<size_t, size_t>> Pairs;
  size_t I = 0, J = 0;
  while (I < N && J < M) {
    if (Equal(A[I], B[J])) {
      Pairs.emplace_back(I, J);
      ++I;
      ++J;
    } else if (At(I + 1, J) >= At(I, J + 1)) {
      ++I;
    } else {
      ++J;
    }
  }
  return Pairs;
}

/// LCS over elements comparable with ==.
template <typename T>
std::vector<std::pair<size_t, size_t>>
longestCommonSubsequence(const std::vector<T> &A, const std::vector<T> &B) {
  return longestCommonSubsequence(
      A, B, [](const T &X, const T &Y) { return X == Y; });
}

} // namespace vega

#endif // VEGA_GUMTREE_LCS_H
