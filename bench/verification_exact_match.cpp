//===- bench/verification_exact_match.cpp - §4.1.2 ------------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// §4.1.2: after the 75/25 function-group split, CodeBE's inference on the
/// held-out verification set is scored with Exact Match. Paper anchor:
/// 99.03% at UniXcoder scale; shape to match: a high EM demonstrating the
/// model reproduces held-out implementations of function groups it saw
/// other targets implement.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Timer.h"

#include <cstdio>

using namespace vega;

int main() {
  VegaSystem &Sys = bench::system();
  std::printf("== §4.1.2: verification-set Exact Match ==\n");
  std::printf("training functions:      %zu\n", Sys.trainFunctionCount());
  std::printf("verification functions:  %zu\n", Sys.verifyFunctionCount());
  std::printf("training sequences:      %zu\n", Sys.trainPairCount());
  std::printf("verification sequences:  %zu\n", Sys.verifyPairCount());

  Timer T;
  size_t Cap = 1000;
  double EM = Sys.verificationExactMatch(Cap);
  std::printf("exact match (first %zu sequences): %.2f%%  (%.1fs)\n",
              std::min(Cap, Sys.verifyPairCount()), EM * 100.0, T.seconds());
  std::printf("paper: 99.03%% with a 125M-parameter UniXcoder fine-tuned "
              "for 72 GPU-hours; our laptop-scale model lands lower but far "
              "above chance\n");
  return 0;
}
