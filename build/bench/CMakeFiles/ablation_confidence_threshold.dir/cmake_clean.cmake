file(REMOVE_RECURSE
  "CMakeFiles/ablation_confidence_threshold.dir/ablation_confidence_threshold.cpp.o"
  "CMakeFiles/ablation_confidence_threshold.dir/ablation_confidence_threshold.cpp.o.d"
  "ablation_confidence_threshold"
  "ablation_confidence_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_confidence_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
