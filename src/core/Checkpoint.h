//===- core/Checkpoint.h - The .vega session artifact ------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned single-file session checkpoint: everything a VegaSystem
/// holds after Stage 1 + Stage 2 — templates with per-target instances,
/// feature-selector properties and harvested value sets, the vocabulary,
/// and the fine-tuned CodeBE weights — serialized so Stage 3 can run in a
/// fresh process without re-touching Stage 1/2.
///
/// Layout (all integers little-endian):
///
///   "VEGASESS"  8-byte magic
///   u32         format version (currently 1)
///   u32         section count
///   sections:   4-byte tag | u64 payload length | u64 FNV-1a checksum |
///               payload
///
/// Sections (all required, any order): META (options + fingerprints),
/// TMPL (templates, features, primary slots), FSEL (global Boolean order +
/// harvest memo), VOCB (vocabulary + structural-token mask), WGTS (CodeBE
/// weights). Loads are strict: bad magic, an unsupported version, a failed
/// checksum, a missing section, or a fingerprint that does not match the
/// corpus the loader supplies all reject the artifact with a precise
/// Status — there is no partial or best-effort load.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_CORE_CHECKPOINT_H
#define VEGA_CORE_CHECKPOINT_H

#include "core/Pipeline.h"
#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vega {

/// Reads and writes `.vega` session artifacts.
class SessionCheckpoint {
public:
  static constexpr const char *Magic = "VEGASESS";
  static constexpr uint32_t FormatVersion = 1;

  /// Header-level summary of an artifact (the `vega-cli inspect` payload).
  struct Info {
    uint32_t Version = 0;
    uint64_t OptionsFingerprint = 0;
    uint64_t CorpusFingerprint = 0;
    /// The artifact-shaping options recorded at save time (runtime knobs
    /// Jobs/Verbose/WeightCachePath come back at their defaults).
    VegaOptions Options;
    uint64_t TemplateCount = 0;
    uint64_t VocabSize = 0;
    uint64_t TrainPairs = 0;
    uint64_t VerifyPairs = 0;
    /// (tag, payload bytes) per section, in file order.
    std::vector<std::pair<std::string, uint64_t>> Sections;
  };

  /// Serializes \p System (which must have completed buildTemplates(),
  /// buildDataset(), and trainModel()/fineTune()) into an artifact blob.
  static StatusOr<std::string> serialize(const VegaSystem &System);

  /// serialize() + atomic-ish write to \p Path (temp file + rename).
  static Status save(const VegaSystem &System, const std::string &Path);

  /// Parses \p Blob and reconstructs a generation-ready VegaSystem over
  /// \p Corpus. The corpus must fingerprint-match the one the artifact was
  /// built from. The returned system supports generateBackend(s)() and
  /// template/feature introspection; it holds no training pairs, so
  /// buildDataset()-dependent paths (fineTune(), verificationExactMatch())
  /// must not be used on it.
  static StatusOr<std::unique_ptr<VegaSystem>>
  restore(const BackendCorpus &Corpus, const std::string &Blob);

  /// Reads + restore()s an artifact file.
  static StatusOr<std::unique_ptr<VegaSystem>>
  load(const BackendCorpus &Corpus, const std::string &Path);

  /// Validates framing (magic, version, checksums) and summarizes the
  /// artifact without constructing a system.
  static StatusOr<Info> inspect(const std::string &Path);

  /// Stable hash of the corpus shape (target names, training set, golden
  /// backend sizes) — recorded in META and checked on load.
  static uint64_t corpusFingerprint(const BackendCorpus &Corpus);
};

} // namespace vega

#endif // VEGA_CORE_CHECKPOINT_H
