//===- tests/ServeTest.cpp - vega-serve protocol + batching tests -------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Exercises the JSON-RPC surface of serve::VegaServer against a shared
/// one-epoch session: request validation and error codes, the batched
/// generate path (responses must be byte-identical whether a request runs
/// alone, inside a forced batch, or concurrently with others), and the
/// stream transport.
///
//===----------------------------------------------------------------------===//

#include "serve/Router.h"
#include "serve/Server.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <sstream>
#include <thread>

using namespace vega;
using namespace vega::serve;

namespace {

VegaSession &session() {
  static std::unique_ptr<VegaSession> S = [] {
    VegaOptions Opts;
    Opts.Model.Epochs = 1;
    Opts.Verbose = false;
    StatusOr<std::unique_ptr<VegaSession>> Built = VegaSession::build(Opts);
    if (!Built.isOk()) {
      std::fprintf(stderr, "session build failed: %s\n",
                   Built.status().toString().c_str());
      std::abort();
    }
    return std::move(*Built);
  }();
  return *S;
}

Json parsed(const std::string &Line) {
  StatusOr<Json> Doc = Json::parse(Line);
  EXPECT_TRUE(Doc.isOk()) << Line;
  return Doc.isOk() ? *Doc : Json();
}

int errorCode(const Json &Response) {
  const Json *Err = Response.get("error");
  return Err ? static_cast<int>(Err->getNumber("code")) : 0;
}

} // namespace

TEST(Serve, PingAndInfo) {
  VegaServer Server(session(), ServerOptions());
  Json Ping = parsed(Server.handleLine(R"({"id":1,"method":"ping"})"));
  ASSERT_NE(Ping.get("result"), nullptr);
  EXPECT_TRUE(Ping.get("result")->get("ok")->asBool());
  EXPECT_EQ(Ping.getString("jsonrpc"), "2.0");
  EXPECT_EQ(Ping.getNumber("id"), 1.0);

  Json Info = parsed(Server.handleLine(R"({"id":"i","method":"info"})"));
  const Json *Result = Info.get("result");
  ASSERT_NE(Result, nullptr);
  EXPECT_EQ(Result->getString("schema"), "vega-serve-1");
  EXPECT_FALSE(Result->get("fromCheckpoint")->asBool());
  EXPECT_GT(Result->get("targets")->size(), 20u);
}

TEST(Serve, MalformedRequestsGetRpcErrorCodes) {
  VegaServer Server(session(), ServerOptions());
  EXPECT_EQ(errorCode(parsed(Server.handleLine("this is not json"))), -32700);
  EXPECT_EQ(errorCode(parsed(Server.handleLine("[1,2,3]"))), -32600);
  EXPECT_EQ(errorCode(parsed(Server.handleLine(R"({"id":1})"))), -32600);
  EXPECT_EQ(
      errorCode(parsed(Server.handleLine(R"({"id":1,"method":"frob"})"))),
      -32601);
  EXPECT_EQ(errorCode(parsed(Server.handleLine(
                R"({"id":1,"method":"generate","params":{}})"))),
            -32602);
  Json Unknown = parsed(Server.handleLine(
      R"({"id":1,"method":"generate","params":{"target":"Z80"}})"));
  EXPECT_EQ(errorCode(Unknown), -32001); // not-found
  EXPECT_EQ(Unknown.get("error")->get("data")->getString("status"),
            "not-found");
}

TEST(Serve, GenerateMatchesDirectProtocolDump) {
  VegaServer Server(session(), ServerOptions());
  Json Response = parsed(Server.handleLine(
      R"({"id":7,"method":"generate","params":{"target":"RISCV"}})"));
  ASSERT_NE(Response.get("result"), nullptr);
  StatusOr<GeneratedBackend> Direct = session().generate("RISCV");
  ASSERT_TRUE(Direct.isOk());
  EXPECT_EQ(Response.get("result")->dump(),
            serve::backendToJson(*Direct).dump());
}

TEST(Serve, ForcedBatchMatchesSingleRequestResponses) {
  VegaServer Server(session(), ServerOptions());
  std::vector<std::string> Lines = {
      R"({"id":1,"method":"generate","params":{"target":"RISCV"}})",
      R"({"id":2,"method":"generate","params":{"target":"RI5CY"}})",
      R"({"id":3,"method":"generate","params":{"target":"RISCV"}})",
      R"({"id":4,"method":"evaluate","params":{"target":"XCORE"}})",
      R"({"id":5,"method":"ping"})",
  };
  std::vector<std::string> Batched = Server.handleLines(Lines);
  ASSERT_EQ(Batched.size(), Lines.size());
  for (size_t I = 0; I < Lines.size(); ++I)
    EXPECT_EQ(Batched[I], Server.handleLine(Lines[I])) << "request " << I;
  // Identical requests inside one batch share the deduped generation.
  Json First = parsed(Batched[0]), Third = parsed(Batched[2]);
  EXPECT_EQ(First.get("result")->dump(), Third.get("result")->dump());
}

TEST(Serve, ConcurrentSubmittersGetIndependentAnswers) {
  VegaServer Server(session(), ServerOptions());
  const std::vector<std::string> Targets = {"RISCV", "RI5CY", "XCORE",
                                            "RISCV"};
  std::vector<std::string> Got(Targets.size());
  std::vector<std::thread> Threads;
  for (size_t I = 0; I < Targets.size(); ++I)
    Threads.emplace_back([&, I] {
      Got[I] = Server.handleLine(
          R"({"id":)" + std::to_string(I) +
          R"(,"method":"generate","params":{"target":")" + Targets[I] +
          R"("}})");
    });
  for (std::thread &T : Threads)
    T.join();
  for (size_t I = 0; I < Targets.size(); ++I) {
    Json Response = parsed(Got[I]);
    EXPECT_EQ(Response.getNumber("id"), static_cast<double>(I));
    ASSERT_NE(Response.get("result"), nullptr) << Got[I];
    EXPECT_EQ(Response.get("result")->getString("target"), Targets[I]);
  }
  // Same target → byte-identical result regardless of batching.
  Json A = parsed(Got[0]), B = parsed(Got[3]);
  EXPECT_EQ(A.get("result")->dump(), B.get("result")->dump());
}

TEST(Serve, EvaluateReportsSchemaAndSummary) {
  VegaServer Server(session(), ServerOptions());
  Json Response = parsed(Server.handleLine(
      R"({"id":1,"method":"evaluate","params":{"target":"RISCV"}})"));
  const Json *Result = Response.get("result");
  ASSERT_NE(Result, nullptr);
  EXPECT_EQ(Result->getString("schema"), "vega-eval-2");
  // The default oracle is the historical text oracle: no differential
  // summary fields appear, so v1 consumers see the same shape plus the
  // "oracle" tag and per-function "txtOnly" flags.
  EXPECT_EQ(Result->getString("oracle"), "text");
  const Json *Summary = Result->get("summary");
  ASSERT_NE(Summary, nullptr);
  double FnAcc = Summary->getNumber("functionAccuracy", -1);
  EXPECT_GE(FnAcc, 0.0);
  EXPECT_LE(FnAcc, 1.0);
  EXPECT_EQ(Summary->get("differentialAccuracy"), nullptr);
  EXPECT_EQ(Summary->get("oracleAgreement"), nullptr);
}

TEST(Serve, EvaluateWithBothOraclesReportsDifferentialSummary) {
  VegaServer Server(session(), ServerOptions());
  Json Response = parsed(Server.handleLine(
      R"({"id":2,"method":"evaluate","params":{"target":"RISCV","oracle":"both"}})"));
  const Json *Result = Response.get("result");
  ASSERT_NE(Result, nullptr) << Response.dump();
  EXPECT_EQ(Result->getString("schema"), "vega-eval-2");
  EXPECT_EQ(Result->getString("oracle"), "text+differential");
  const Json *Summary = Result->get("summary");
  ASSERT_NE(Summary, nullptr);
  EXPECT_GE(Summary->getNumber("differentialAccuracy", -1), 0.0);
  EXPECT_GE(Summary->getNumber("adjustedStatementAccuracy", -1),
            Summary->getNumber("statementAccuracy", -1));
  const Json *Agreement = Summary->get("oracleAgreement");
  ASSERT_NE(Agreement, nullptr);
  EXPECT_GE(Agreement->getNumber("bothPass", -1), 0.0);
  EXPECT_GE(Agreement->getNumber("primaryOnlyPass", -1), 0.0);
  // Every scored function carries the differential sub-object.
  const Json *Functions = Result->get("functions");
  ASSERT_NE(Functions, nullptr);
  ASSERT_GT(Functions->size(), 0u);
  for (const Json &Fn : Functions->items()) {
    ASSERT_NE(Fn.get("txtOnly"), nullptr);
    // Scoring needs both sides: a generated function with no golden
    // counterpart (or vice versa) never reaches either oracle.
    if (!Fn.get("generated")->asBool() || !Fn.get("goldenExists")->asBool())
      continue;
    const Json *Diff = Fn.get("differential");
    ASSERT_NE(Diff, nullptr) << Fn.dump();
    EXPECT_GE(Diff->getNumber("cases", -1), 0.0);
  }

  // An unknown oracle is rejected up front with InvalidParams, before any
  // generation work is scheduled.
  Json Bad = parsed(Server.handleLine(
      R"({"id":3,"method":"evaluate","params":{"target":"RISCV","oracle":"vibes"}})"));
  EXPECT_EQ(errorCode(Bad), -32602);
  EXPECT_EQ(Bad.get("error")->get("data")->getString("status"),
            "invalid-argument");
}

TEST(Serve, ErrorTaxonomySerializesAllCombinationsInStableOrder) {
  // The "vega-eval-2" errors array must list Err-V, Err-CS, Err-Def,
  // Div-Val, Div-Trap, Div-Eff in that fixed order for every one of the
  // 64 flag combinations — downstream diffing (CI smoke, jobs-determinism
  // checks) relies on the rendering being canonical.
  for (int Mask = 0; Mask < 64; ++Mask) {
    BackendEval Eval;
    Eval.TargetName = "RISCV";
    FunctionEval FE;
    FE.InterfaceName = "combo" + std::to_string(Mask);
    FE.GoldenExists = true;
    FE.Generated = true;
    FE.ErrV = (Mask & 1) != 0;
    FE.ErrCS = (Mask & 2) != 0;
    FE.ErrDef = (Mask & 4) != 0;
    FE.DivVal = (Mask & 8) != 0;
    FE.DivTrap = (Mask & 16) != 0;
    FE.DivEff = (Mask & 32) != 0;
    // Divergence classes only arise when the differential oracle ran.
    FE.DiffRan = (Mask & 56) != 0;
    FE.DiffCases = FE.DiffRan ? 24 : 0;
    FE.DiffPassed = 0;
    FE.TxtOnly = Mask == 0;
    FE.Accurate = Mask == 0;
    Eval.Functions.push_back(FE);

    Json Doc = evalToJson(Eval);
    ASSERT_EQ(Doc.get("functions")->size(), 1u) << "mask " << Mask;
    const Json &Fn = Doc.get("functions")->at(0);
    const Json *Errors = Fn.get("errors");
    ASSERT_NE(Errors, nullptr) << "mask " << Mask;
    std::vector<std::string> Expected;
    if (FE.ErrV)
      Expected.push_back("Err-V");
    if (FE.ErrCS)
      Expected.push_back("Err-CS");
    if (FE.ErrDef)
      Expected.push_back("Err-Def");
    if (FE.DivVal)
      Expected.push_back("Div-Val");
    if (FE.DivTrap)
      Expected.push_back("Div-Trap");
    if (FE.DivEff)
      Expected.push_back("Div-Eff");
    ASSERT_EQ(Errors->size(), Expected.size()) << "mask " << Mask;
    for (size_t I = 0; I < Expected.size(); ++I)
      EXPECT_EQ(Errors->at(I).asString(), Expected[I])
          << "mask " << Mask << " index " << I;
    // txtOnly always renders; the differential sub-object exactly when
    // the differential oracle ran.
    ASSERT_NE(Fn.get("txtOnly"), nullptr) << "mask " << Mask;
    EXPECT_EQ(Fn.get("txtOnly")->asBool(), FE.TxtOnly) << "mask " << Mask;
    EXPECT_EQ(Fn.get("differential") != nullptr, FE.DiffRan)
        << "mask " << Mask;

    // Round-trip: re-parsing the dump preserves the array byte-for-byte.
    StatusOr<Json> Back = Json::parse(Doc.dump());
    ASSERT_TRUE(Back.isOk()) << "mask " << Mask;
    EXPECT_EQ(Back->dump(), Doc.dump()) << "mask " << Mask;
  }
}

TEST(Serve, RepairMethodReportsSchemaAndNeverRegresses) {
  VegaServer Server(session(), ServerOptions());
  Json Response = parsed(Server.handleLine(
      R"({"id":9,"method":"repair","params":{"target":"RISCV","beamWidth":2,"maxRounds":1}})"));
  const Json *Result = Response.get("result");
  ASSERT_NE(Result, nullptr) << Response.dump();
  EXPECT_EQ(Result->getString("schema"), "vega-repair-1");
  const Json *Options = Result->get("options");
  ASSERT_NE(Options, nullptr);
  EXPECT_EQ(Options->getNumber("beamWidth"), 2.0);
  EXPECT_EQ(Options->getNumber("maxRounds"), 1.0);
  EXPECT_EQ(Options->getString("oracle"), "text");
  const Json *Summary = Result->get("summary");
  ASSERT_NE(Summary, nullptr);
  double Before = Summary->getNumber("baselineFunctionAccuracy", -1);
  double After = Summary->getNumber("repairedFunctionAccuracy", -1);
  EXPECT_GE(Before, 0.0);
  EXPECT_GE(After, Before);
  ASSERT_NE(Result->get("backend"), nullptr);
  EXPECT_EQ(Result->get("backend")->getString("schema"), "vega-backend-1");

  // Unknown target surfaces the standard notFound error, same as
  // generate/evaluate.
  Json Bad = parsed(Server.handleLine(
      R"({"id":10,"method":"repair","params":{"target":"Nope"}})"));
  EXPECT_EQ(errorCode(Bad), -32001);
}

TEST(Serve, StatsRpcReportsLiveTelemetry) {
  VegaServer Server(session(), ServerOptions());
  obs::MetricsRegistry::instance().clear();
  parsed(Server.handleLine(
      R"({"id":1,"method":"generate","params":{"target":"RISCV"}})"));
  Json Stats = parsed(Server.handleLine(R"({"id":2,"method":"stats"})"));
  const Json *Result = Stats.get("result");
  ASSERT_NE(Result, nullptr) << Stats.dump();
  EXPECT_EQ(Result->getString("schema"), "vega-stats-1");
  EXPECT_GE(Result->getNumber("uptimeSec"), 0.0);
  // The stats request counts itself: one generate + this call.
  EXPECT_EQ(Result->getNumber("requests"), 2.0);
  EXPECT_EQ(Result->getNumber("inFlight"), 1.0); // this very request
  EXPECT_EQ(Result->getNumber("queueDepth"), 0.0);
  const Json *Counters = Result->get("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_EQ(Counters->getNumber(
                "serve.requests{code=\"ok\",method=\"generate\"}"),
            1.0);
  const Json *Quantiles = Result->get("quantiles");
  ASSERT_NE(Quantiles, nullptr);
  const Json *Latency = Quantiles->get("serve.request_ms");
  ASSERT_NE(Latency, nullptr) << Stats.dump();
  EXPECT_GE(Latency->getNumber("count"), 1.0);
  EXPECT_GE(Latency->getNumber("p50"), 0.0);
  EXPECT_GE(Latency->getNumber("p99"), Latency->getNumber("p50"));
}

TEST(Serve, StatsTopLevelShapeIsFrozen) {
  // The flywheel is deliberately NOT a serve method — self-training runs
  // offline via vega-cli. Pin the exact "vega-stats-1" top-level key set
  // so no subsystem grows serve-side telemetry surface unnoticed.
  VegaServer Server(session(), ServerOptions());
  Json Stats = parsed(Server.handleLine(R"({"id":9,"method":"stats"})"));
  const Json *Result = Stats.get("result");
  ASSERT_NE(Result, nullptr) << Stats.dump();
  std::vector<std::string> Keys;
  for (const auto &Field : Result->fields())
    Keys.push_back(Field.first);
  EXPECT_EQ(Keys, (std::vector<std::string>{
                      "schema", "uptimeSec", "inFlight", "queueDepth",
                      "requests", "scheduler", "counters", "gauges",
                      "quantiles"}));
  std::vector<std::string> Sched;
  for (const auto &Field : Result->get("scheduler")->fields())
    Sched.push_back(Field.first);
  EXPECT_EQ(Sched, (std::vector<std::string>{
                       "window", "maxQueue", "steps", "admitted", "attached",
                       "retired", "rejected", "expired", "maxCoActive",
                       "active"}));
  // And no flywheel method leaked into the RPC surface.
  Json Unknown = parsed(Server.handleLine(R"({"id":10,"method":"flywheel"})"));
  EXPECT_EQ(errorCode(Unknown), -32601);
}

TEST(Serve, DeadlineExceededAnswersUnavailable) {
  VegaServer Server(session(), ServerOptions());
  // The deadline is armed relative to request creation; a sub-microsecond
  // budget is always blown by parse time and must never reach generation.
  Json Late = parsed(Server.handleLine(
      R"({"id":11,"method":"generate","params":{"target":"RISCV","deadlineMs":0.000001}})"));
  EXPECT_EQ(errorCode(Late), -32004);
  EXPECT_EQ(Late.get("error")->getString("message"), "deadline exceeded");
  EXPECT_EQ(Late.get("error")->get("data")->getString("status"),
            "unavailable");
  // A roomy deadline changes nothing about a successful answer.
  Json Ok = parsed(Server.handleLine(
      R"({"id":12,"method":"generate","params":{"target":"RISCV","deadlineMs":600000}})"));
  ASSERT_NE(Ok.get("result"), nullptr) << Ok.dump();
  Json Plain = parsed(Server.handleLine(
      R"({"id":12,"method":"generate","params":{"target":"RISCV"}})"));
  EXPECT_EQ(Ok.get("result")->dump(), Plain.get("result")->dump());
}

TEST(Serve, EverySpanCarriesItsOriginatingRequestId) {
  VegaServer Server(session(), ServerOptions());
  auto &Recorder = obs::TraceRecorder::instance();
  Recorder.clear();
  Recorder.setEnabled(true);
  Json Response = parsed(Server.handleLine(
      R"({"id":31,"method":"generate","params":{"target":"RI5CY"}})"));
  Recorder.setEnabled(false);
  ASSERT_NE(Response.get("result"), nullptr) << Response.dump();
  // The serve.request span knows the request; every gen.* span produced on
  // its behalf — across the ThreadPool fan-out — carries the same id.
  std::string RequestId;
  std::vector<obs::TraceEvent> Events = Recorder.snapshot();
  for (const obs::TraceEvent &E : Events)
    if (E.Name == "serve.request")
      for (const auto &[K, V] : E.Args)
        if (K == "req")
          RequestId = V;
  ASSERT_FALSE(RequestId.empty());
  size_t GenSpans = 0;
  for (const obs::TraceEvent &E : Events) {
    if (E.Name.rfind("gen.", 0) != 0)
      continue;
    ++GenSpans;
    bool Attributed = false;
    for (const auto &[K, V] : E.Args)
      if (K == "req" && V == RequestId)
        Attributed = true;
    EXPECT_TRUE(Attributed) << E.Name << " missing req=" << RequestId;
  }
  EXPECT_GT(GenSpans, 0u);
  Recorder.clear();
}

TEST(Serve, StreamTransportAnswersInOrderAndStopsOnShutdown) {
  VegaServer Server(session(), ServerOptions());
  std::istringstream In(R"({"id":1,"method":"ping"})"
                        "\n"
                        R"({"id":2,"method":"generate","params":{"target":"RISCV"}})"
                        "\n"
                        R"({"id":3,"method":"shutdown"})"
                        "\n");
  std::ostringstream Out;
  ASSERT_TRUE(Server.serveStream(In, Out).isOk());
  EXPECT_TRUE(Server.shutdownRequested());

  std::vector<Json> Responses;
  std::istringstream Lines(Out.str());
  std::string Line;
  while (std::getline(Lines, Line))
    Responses.push_back(parsed(Line));
  ASSERT_EQ(Responses.size(), 3u); // every submitted request is answered
  EXPECT_EQ(Responses[0].getNumber("id"), 1.0);
  EXPECT_EQ(Responses[1].getNumber("id"), 2.0);
  EXPECT_EQ(Responses[1].get("result")->getString("target"), "RISCV");
  EXPECT_EQ(Responses[2].getNumber("id"), 3.0);
}

TEST(Serve, InfoReportsDecodeKnobs) {
  VegaServer Server(session(), ServerOptions());
  Json Info = parsed(Server.handleLine(R"({"id":1,"method":"info"})"));
  const Json *Result = Info.get("result");
  ASSERT_NE(Result, nullptr);
  EXPECT_EQ(Result->getString("precision"), "fp32");
  ASSERT_NE(Result->get("prefixSharing"), nullptr);
  EXPECT_TRUE(Result->get("prefixSharing")->asBool());

  session().setPrecision(Precision::INT8);
  session().setPrefixSharing(false);
  Json Alt = parsed(Server.handleLine(R"({"id":2,"method":"info"})"));
  session().setPrecision(Precision::FP32);
  session().setPrefixSharing(true);
  const Json *AltResult = Alt.get("result");
  ASSERT_NE(AltResult, nullptr);
  EXPECT_EQ(AltResult->getString("precision"), "int8");
  EXPECT_FALSE(AltResult->get("prefixSharing")->asBool());
}

TEST(Serve, StatsExposesPrefixSharingTelemetry) {
  // A plain generate over the real corpus legitimately shares nothing
  // (no duplicate candidate sites; DESIGN.md §14), so drive one shared
  // group decode directly through the session's model and require the
  // hit counter and reuse histogram to surface in the stats RPC.
  VegaServer Server(session(), ServerOptions());
  obs::MetricsRegistry::instance().clear();
  parsed(Server.handleLine(
      R"({"id":1,"method":"generate","params":{"target":"RISCV"}})"));

  CodeBE *Model = session().system().model();
  const Vocab &V = Model->vocab();
  std::vector<int> Src = {V.clsId()};
  CodeBE::DecodePlan Plan;
  Plan.Steps.push_back({V.csId(20)});
  Plan.Steps.push_back({V.csId(40)});
  std::vector<CodeBE::GroupRequest> Reqs(
      2, CodeBE::GroupRequest{&Src, nullptr, &Plan});
  Model->setPrefixSharing(true);
  std::vector<CodeBE::Decoded> Out = Model->generateGroup(Reqs);
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].Tokens, Out[1].Tokens);

  Json Stats = parsed(Server.handleLine(R"({"id":2,"method":"stats"})"));
  const Json *Result = Stats.get("result");
  ASSERT_NE(Result, nullptr) << Stats.dump();
  const Json *Counters = Result->get("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_GE(Counters->getNumber("gen.prefix.hits", 0), 1.0) << Stats.dump();
  const Json *Quantiles = Result->get("quantiles");
  ASSERT_NE(Quantiles, nullptr);
  const Json *Reuse = Quantiles->get("gen.prefix_reuse_tokens");
  ASSERT_NE(Reuse, nullptr) << Stats.dump();
  EXPECT_GE(Reuse->getNumber("count"), 1.0);
}

TEST(Serve, CoBatchedEightWayMatchesSoloBytes) {
  // Eight concurrent clients over three targets: every response must be
  // byte-identical to the sequential (solo) answer for the same request
  // line. Co-batching in the decode-step scheduler may only change timing.
  VegaServer Server(session(), ServerOptions());
  const std::vector<std::string> Targets = {"RISCV", "RI5CY", "XCORE"};
  std::vector<std::string> Lines, Solo;
  for (size_t I = 0; I < 8; ++I)
    Lines.push_back(R"({"id":)" + std::to_string(I) +
                    R"(,"method":"generate","params":{"target":")" +
                    Targets[I % Targets.size()] + R"("}})");
  for (const std::string &L : Lines)
    Solo.push_back(Server.handleLine(L));

  std::vector<std::string> Got(Lines.size());
  std::vector<std::thread> Threads;
  for (size_t I = 0; I < Lines.size(); ++I)
    Threads.emplace_back([&, I] { Got[I] = Server.handleLine(Lines[I]); });
  for (std::thread &T : Threads)
    T.join();
  for (size_t I = 0; I < Lines.size(); ++I)
    EXPECT_EQ(Got[I], Solo[I]) << "request " << I;
  SchedulerStats S = Server.scheduler().stats();
  EXPECT_EQ(S.Admitted + S.Attached, 16u);
  EXPECT_EQ(S.Retired, S.Admitted);
  EXPECT_EQ(S.Active, 0u);
  EXPECT_EQ(S.QueueDepth, 0u);
}

TEST(Serve, MidFlightAdmissionCoBatchesQueuedTargets) {
  // pause() holds admission so two different targets are provably queued
  // together; resume() must admit both into one co-active step window
  // (MaxCoActive >= 2 — real mid-flight co-residency, not luck), and two
  // queued requests for one target must share a single generation.
  VegaServer Server(session(), ServerOptions());
  Server.scheduler().pause();
  std::future<std::string> F1 = Server.submitLine(
      R"({"id":1,"method":"generate","params":{"target":"RISCV"}})");
  std::future<std::string> F2 = Server.submitLine(
      R"({"id":2,"method":"generate","params":{"target":"RI5CY"}})");
  std::future<std::string> F3 = Server.submitLine(
      R"({"id":3,"method":"generate","params":{"target":"RISCV"}})");
  EXPECT_EQ(Server.scheduler().stats().QueueDepth, 3u);
  EXPECT_EQ(Server.inFlight(), 3u);
  Server.scheduler().resume();
  Json R1 = parsed(F1.get()), R2 = parsed(F2.get()), R3 = parsed(F3.get());
  ASSERT_NE(R1.get("result"), nullptr);
  ASSERT_NE(R2.get("result"), nullptr);
  ASSERT_NE(R3.get("result"), nullptr);
  // Deduped same-target requests answer with the same backend bytes.
  EXPECT_EQ(R1.get("result")->dump(), R3.get("result")->dump());
  SchedulerStats S = Server.scheduler().stats();
  EXPECT_EQ(S.Admitted, 2u);
  EXPECT_EQ(S.Attached, 1u);
  EXPECT_EQ(S.Retired, 2u);
  EXPECT_GE(S.MaxCoActive, 2u);
  EXPECT_EQ(Server.inFlight(), 0u);
}

TEST(Serve, BackpressureRejectsWithTypedOverloadedCode) {
  // Window 1 + queue 1, paused: the first request holds the only queue
  // slot, so the second must be rejected synchronously with the typed
  // Overloaded code (-32005) — admission control, not an open-ended queue.
  ServerOptions Options;
  Options.Window = 1;
  Options.MaxQueue = 1;
  VegaServer Server(session(), Options);
  Server.scheduler().pause();
  std::future<std::string> Held = Server.submitLine(
      R"({"id":1,"method":"generate","params":{"target":"RISCV"}})");
  Json Rejected = parsed(Server.handleLine(
      R"({"id":2,"method":"generate","params":{"target":"XCORE"}})"));
  EXPECT_EQ(errorCode(Rejected), -32005);
  EXPECT_EQ(Rejected.get("error")->get("data")->getString("status"),
            "resource-exhausted");
  EXPECT_EQ(Server.scheduler().stats().Rejected, 1u);
  Server.scheduler().resume();
  Json First = parsed(Held.get());
  EXPECT_NE(First.get("result"), nullptr);
}

TEST(Serve, RouterForwardsVerbatimAcrossTwoShards) {
  // Two in-process shards over the same artifact: the router's shard map
  // must split the target space, forward generation verbatim to the owner,
  // and relay bytes identical to a single-server answer. info speaks
  // vega-serve-2 with the shard map; v1 fields stay present.
  const std::string Path = "serve_test_router.vega";
  ASSERT_TRUE(session().save(Path).isOk());
  std::vector<std::unique_ptr<ShardEndpoint>> Endpoints;
  for (int I = 0; I < 2; ++I) {
    StatusOr<std::unique_ptr<VegaSession>> Loaded = VegaSession::load(Path);
    ASSERT_TRUE(Loaded.isOk()) << Loaded.status().toString();
    Endpoints.push_back(std::make_unique<LocalShard>(
        "s" + std::to_string(I), std::move(Loaded.value()), ServerOptions()));
  }
  std::remove(Path.c_str());
  VegaRouter Fleet(std::move(Endpoints), RouterOptions());
  ASSERT_TRUE(Fleet.init().isOk());

  Json Info = parsed(Fleet.handleLine(R"({"id":"i","method":"info"})"));
  const Json *Result = Info.get("result");
  ASSERT_NE(Result, nullptr);
  EXPECT_EQ(Result->getString("schema"), "vega-serve-2");
  EXPECT_TRUE(Result->get("router")->asBool());
  ASSERT_NE(Result->get("shards"), nullptr);
  ASSERT_EQ(Result->get("shards")->size(), 2u);
  EXPECT_GT(Result->get("targets")->size(), 20u);

  // Round-robin over identical shards: both sides of the map are owned.
  ASSERT_EQ(Fleet.shardCount(), 2u);
  std::vector<std::string> OwnedBy[2];
  for (const auto &[Target, Owner] : Fleet.shardMap())
    OwnedBy[Owner].push_back(Target);
  ASSERT_FALSE(OwnedBy[0].empty());
  ASSERT_FALSE(OwnedBy[1].empty());

  VegaServer Single(session(), ServerOptions());
  for (const std::string &Target : {OwnedBy[0].front(), OwnedBy[1].front()}) {
    const std::string Line =
        R"({"id":7,"method":"generate","params":{"target":")" + Target +
        R"("}})";
    EXPECT_EQ(Fleet.handleLine(Line), Single.handleLine(Line))
        << "target " << Target;
  }
  EXPECT_GT(Fleet.forwardCount(0), 0u);
  EXPECT_GT(Fleet.forwardCount(1), 0u);

  // Routing rejections carry the same bytes a shard would produce.
  const std::string Unknown =
      R"({"id":9,"method":"generate","params":{"target":"Z80"}})";
  EXPECT_EQ(Fleet.handleLine(Unknown), Single.handleLine(Unknown));
}
