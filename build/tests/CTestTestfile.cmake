# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/ast_test[1]_include.cmake")
include("/root/repo/build/tests/gumtree_test[1]_include.cmake")
include("/root/repo/build/tests/tablegen_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/templatize_test[1]_include.cmake")
include("/root/repo/build/tests/feature_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/evalspec_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/forkflow_test[1]_include.cmake")
include("/root/repo/build/tests/minicc_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/bench_serialization_test[1]_include.cmake")
