//===- bench/microbench.cpp - google-benchmark microbenchmarks ------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Microbenchmarks for the hot kernels behind the figures: lexing, GumTree
/// matching, templatization, Algorithm-1 harvesting, interpretation, and a
/// CodeBE decode step. These are throughput numbers, not paper results.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "eval/EvalSpecs.h"
#include "feature/FeatureSelector.h"
#include "gumtree/Matcher.h"
#include "interp/Interpreter.h"
#include "lexer/Lexer.h"
#include "minicc/Benchmarks.h"
#include "sim/Simulator.h"
#include "templatize/FunctionTemplate.h"

#include <benchmark/benchmark.h>

using namespace vega;

namespace {

const BackendCorpus &corpus() {
  static BackendCorpus Corpus =
      BackendCorpus::build(TargetDatabase::standard());
  return Corpus;
}

const BackendFunction &armReloc() {
  return *corpus().backend("ARM")->find("getRelocType");
}

void BM_LexGetRelocType(benchmark::State &State) {
  const std::string &Src = armReloc().Source;
  for (auto _ : State)
    benchmark::DoNotOptimize(Lexer::tokenize(Src));
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Src.size()));
}
BENCHMARK(BM_LexGetRelocType);

void BM_ParseGetRelocType(benchmark::State &State) {
  const std::string &Src = armReloc().Source;
  for (auto _ : State)
    benchmark::DoNotOptimize(preprocessFunctionSource(Src));
}
BENCHMARK(BM_ParseGetRelocType);

void BM_GumTreeMatch(benchmark::State &State) {
  const FunctionAST &A = armReloc().AST;
  const FunctionAST &B = corpus().backend("Mips")->find("getRelocType")->AST;
  for (auto _ : State)
    benchmark::DoNotOptimize(matchFunctions(A, B));
}
BENCHMARK(BM_GumTreeMatch);

void BM_TemplatizeRelocGroup(benchmark::State &State) {
  static std::vector<FunctionGroup> Groups = corpus().trainingGroups();
  const FunctionGroup *Reloc = nullptr;
  for (const FunctionGroup &G : Groups)
    if (G.InterfaceName == "getRelocType")
      Reloc = &G;
  for (auto _ : State)
    benchmark::DoNotOptimize(buildFunctionTemplate(*Reloc));
}
BENCHMARK(BM_TemplatizeRelocGroup);

void BM_HarvestFixups(benchmark::State &State) {
  static FeatureSelector Selector = [] {
    std::vector<std::string> Names;
    for (const TargetTraits &T : corpus().targets().targets())
      Names.push_back(T.Name);
    return FeatureSelector(corpus().vfs(), Names);
  }();
  for (auto _ : State)
    benchmark::DoNotOptimize(Selector.harvestValues("MCFixupKind", "RISCV"));
}
BENCHMARK(BM_HarvestFixups);

void BM_InterpretGetRelocType(benchmark::State &State) {
  const FunctionAST &Fn = armReloc().AST;
  const TargetTraits *T = corpus().targets().find("ARM");
  std::vector<Environment> Envs = buildTestEnvironments("getRelocType", *T);
  Interpreter Interp;
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Interp.run(Fn, Envs[I % Envs.size()]));
    ++I;
  }
}
BENCHMARK(BM_InterpretGetRelocType);

void BM_CompileBenchmarkO3(benchmark::State &State) {
  const TargetTraits *T = corpus().targets().find("RISCV");
  BackendHooks Hooks = hooksFromTraits(*T);
  IRModule Module = buildBenchmark("502.gcc_r");
  for (auto _ : State)
    benchmark::DoNotOptimize(
        compileAndRun(Module, *T, Hooks, OptLevel::O3));
}
BENCHMARK(BM_CompileBenchmarkO3);

} // namespace

BENCHMARK_MAIN();
