//===- ast/Normalize.h - Statement normalization -----------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Preprocessing normalizations from §3.1 of the paper: equivalent selection
/// statements (if/else-if equality chains over one scrutinee) are rewritten
/// into switch statements so that function-group members align structurally.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_AST_NORMALIZE_H
#define VEGA_AST_NORMALIZE_H

#include "ast/Statement.h"

namespace vega {

/// Rewrites if/else-if equality chains in \p Function into switch statements
/// (in place). Returns the number of chains rewritten.
unsigned normalizeSelectionStatements(FunctionAST &Function);

} // namespace vega

#endif // VEGA_AST_NORMALIZE_H
