
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minicc/Benchmarks.cpp" "src/minicc/CMakeFiles/vega_minicc.dir/Benchmarks.cpp.o" "gcc" "src/minicc/CMakeFiles/vega_minicc.dir/Benchmarks.cpp.o.d"
  "/root/repo/src/minicc/Compiler.cpp" "src/minicc/CMakeFiles/vega_minicc.dir/Compiler.cpp.o" "gcc" "src/minicc/CMakeFiles/vega_minicc.dir/Compiler.cpp.o.d"
  "/root/repo/src/minicc/Hooks.cpp" "src/minicc/CMakeFiles/vega_minicc.dir/Hooks.cpp.o" "gcc" "src/minicc/CMakeFiles/vega_minicc.dir/Hooks.cpp.o.d"
  "/root/repo/src/minicc/IR.cpp" "src/minicc/CMakeFiles/vega_minicc.dir/IR.cpp.o" "gcc" "src/minicc/CMakeFiles/vega_minicc.dir/IR.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/vega_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/vega_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/tablegen/CMakeFiles/vega_tablegen.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/vega_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/vega_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vega_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
