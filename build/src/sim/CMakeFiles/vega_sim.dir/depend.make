# Empty dependencies file for vega_sim.
# This may be replaced when dependencies are built.
