file(REMOVE_RECURSE
  "CMakeFiles/evalspec_test.dir/EvalSpecTest.cpp.o"
  "CMakeFiles/evalspec_test.dir/EvalSpecTest.cpp.o.d"
  "evalspec_test"
  "evalspec_test.pdb"
  "evalspec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evalspec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
